//! Generalisation to more than two servers (paper §3).
//!
//! The paper's design and evaluation use two servers, but §3 notes that
//! "the details are easily generalizable to multi-server PIR constructions
//! where n > 2 — however, communication overhead from distributing queries
//! increases with the number of servers". This module provides that
//! generalisation using the straightforward n-party XOR sharing of the
//! one-hot query vector: every server receives a share of size `N` bits,
//! performs exactly the same `dpXOR` scan as in the two-server protocol,
//! and the client XORs all `n` subresults.
//!
//! (A sub-linear-key n-party construction would require general function
//! secret sharing rather than the two-party DPF; the paper does not
//! evaluate one and neither do we — the upload cost reported by
//! [`NServerNaivePir::upload_bytes_per_query`] makes the trade-off
//! explicit.)

use std::sync::Arc;

use impir_dpf::naive::generate_multi_party_shares;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::database::Database;
use crate::dpxor;
use crate::error::PirError;

/// An n-server PIR deployment based on linear (naive) query shares.
///
/// Privacy holds as long as at least one of the `n` servers does not
/// collude with the others.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use impir_core::{database::Database, multi_server::NServerNaivePir};
///
/// let db = Arc::new(Database::random(512, 32, 3)?);
/// let mut pir = NServerNaivePir::new(db.clone(), 4, 7)?;
/// assert_eq!(pir.query(99)?, db.record(99));
/// # Ok::<(), impir_core::PirError>(())
/// ```
#[derive(Debug)]
pub struct NServerNaivePir {
    database: Arc<Database>,
    servers: usize,
    rng: StdRng,
}

impl NServerNaivePir {
    /// Creates a deployment with `servers ≥ 2` replicas of `database`.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] if fewer than two servers are requested.
    pub fn new(database: Arc<Database>, servers: usize, seed: u64) -> Result<Self, PirError> {
        if servers < 2 {
            return Err(PirError::Config {
                reason: "multi-server PIR needs at least two non-colluding servers".to_string(),
            });
        }
        Ok(NServerNaivePir {
            database,
            servers,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Number of servers in the deployment.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Upload cost of one query in bytes: every server receives an `N`-bit
    /// share, so the total grows linearly in both the database size and the
    /// number of servers — the communication overhead §3 warns about.
    #[must_use]
    pub fn upload_bytes_per_query(&self) -> u64 {
        self.servers as u64 * self.database.num_records().div_ceil(8)
    }

    /// Privately retrieves the record at `index`.
    ///
    /// Each server's work is simulated locally: it computes the
    /// selector-weighted XOR of the whole database under its share, exactly
    /// the `dpXOR` that the two-server backends offload to PIM.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::IndexOutOfRange`] for invalid indices.
    pub fn query(&mut self, index: u64) -> Result<Vec<u8>, PirError> {
        if index >= self.database.num_records() {
            return Err(PirError::IndexOutOfRange {
                index,
                num_records: self.database.num_records(),
            });
        }
        let shares = generate_multi_party_shares(
            self.database.num_records(),
            index,
            self.servers,
            &mut self.rng,
        )?;
        let mut record = vec![0u8; self.database.record_size()];
        for share in &shares {
            let subresult = self.database.xor_select(share);
            dpxor::xor_in_place(&mut record, &subresult);
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn retrieval_is_correct_for_various_server_counts() {
        let db = Arc::new(Database::random(300, 16, 1).unwrap());
        for servers in [2usize, 3, 5, 8] {
            let mut pir = NServerNaivePir::new(db.clone(), servers, servers as u64).unwrap();
            for index in [0u64, 123, 299] {
                assert_eq!(pir.query(index).unwrap(), db.record(index), "servers={servers}");
            }
        }
    }

    #[test]
    fn fewer_than_two_servers_is_rejected() {
        let db = Arc::new(Database::random(10, 8, 0).unwrap());
        assert!(NServerNaivePir::new(db, 1, 0).is_err());
    }

    #[test]
    fn upload_cost_grows_with_server_count() {
        let db = Arc::new(Database::random(1024, 32, 0).unwrap());
        let two = NServerNaivePir::new(db.clone(), 2, 0).unwrap();
        let five = NServerNaivePir::new(db, 5, 0).unwrap();
        assert_eq!(two.upload_bytes_per_query(), 2 * 128);
        assert_eq!(five.upload_bytes_per_query(), 5 * 128);
    }

    #[test]
    fn out_of_range_index_is_rejected() {
        let db = Arc::new(Database::random(10, 8, 0).unwrap());
        let mut pir = NServerNaivePir::new(db, 3, 0).unwrap();
        assert!(pir.query(10).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_retrieval_matches_database(
            num_records in 2u64..300,
            servers in 2usize..6,
            seed in any::<u64>(),
        ) {
            let db = Arc::new(Database::random(num_records, 24, seed).unwrap());
            let mut pir = NServerNaivePir::new(db.clone(), servers, seed ^ 1).unwrap();
            let index = seed % num_records;
            prop_assert_eq!(pir.query(index).unwrap(), db.record(index).to_vec());
        }
    }
}
