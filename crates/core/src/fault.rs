//! Deterministic fault injection for the transport layer.
//!
//! Recovery code is only as trustworthy as the failures it has been run
//! against, and real networks fail rarely and unreproducibly. This module
//! makes failure a *scheduled input*:
//!
//! * [`FaultInjectingTransport`] wraps any [`PirTransport`] and injects
//!   faults at **operation** granularity, driven by a [`FaultSchedule`]
//!   mapping the wrapper's global operation counter to a [`FaultAction`]
//!   — drop the connection before the request is sent (the server never
//!   sees it), drop it after (the server executes it but the reply is
//!   lost — the poisonous *applied-but-unacknowledged* case for updates),
//!   truncate the reply, or just delay. Wrapping only one replica of a
//!   [`crate::scheme::TwoServerPir`] produces exactly the one-sided
//!   failures the epoch-driven recovery path must absorb.
//! * [`FaultProxy`] is a frame-aware TCP proxy for the real
//!   [`crate::transport::TcpTransport`]: it forwards the versioned
//!   [`crate::wire`] frames between a client and an `impir-server`
//!   service, and kills or mangles the connection at a scheduled frame
//!   index. Because the proxy's *listener* stays up while individual
//!   connections die, it exercises the transport's reconnect + handshake
//!   + retry path against a live server without rebinding ports.
//!
//! Schedules are plain maps, built explicitly or generated
//! pseudo-randomly from a seed ([`FaultSchedule::seeded`]) so a soak test
//! can sweep many distinct failure interleavings and still reproduce any
//! of them from its seed alone.

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use impir_dpf::SelectorVector;

use crate::batch::UpdateOutcome;
use crate::error::PirError;
use crate::journal::UpdateBatch;
use crate::protocol::QueryShare;
use crate::transport::{EpochInfo, PirTransport, ScanResult, ServerInfo, TransportBatch};
use crate::wire::{FRAME_HEADER_BYTES, MAX_FRAME_BYTES};

// ---------------------------------------------------------------------------
// Fault actions and schedules
// ---------------------------------------------------------------------------

/// One injected fault, applied to a single transport operation (for
/// [`FaultInjectingTransport`]) or a single client frame (for
/// [`FaultProxy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The connection dies before the request leaves the client: the
    /// server never sees the operation. Safe to retry blindly.
    DropBeforeRequest,
    /// The request reaches the server and **executes**, but the reply is
    /// lost. For an update this is the applied-but-unacknowledged case
    /// that blind resends would double-apply.
    DropAfterRequest,
    /// The reply (or, on the proxy, the forwarded request) is cut off
    /// mid-frame, exercising the hostile-input decoding path.
    TruncateReply,
    /// The operation is delayed by this many milliseconds, then runs
    /// normally — reordering pressure without failure.
    DelayMillis(u64),
}

/// A deterministic schedule: operation (or frame) index → fault.
///
/// Indices count from 0 over the lifetime of the wrapper/proxy, across
/// reconnects; operations without an entry run untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    faults: BTreeMap<u64, FaultAction>,
}

impl FaultSchedule {
    /// An empty schedule (no faults — the wrapper is a transparent proxy).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a fault at operation `index` (builder style).
    #[must_use]
    pub fn with_fault(mut self, index: u64, action: FaultAction) -> Self {
        self.faults.insert(index, action);
        self
    }

    /// Generates a pseudo-random schedule over operations `0..ops`:
    /// roughly one in `one_in` operations faults, with the fault kind and
    /// position derived from `seed` alone (SplitMix64), so every schedule
    /// is reproducible from `(seed, ops, one_in)`.
    #[must_use]
    pub fn seeded(seed: u64, ops: u64, one_in: u64) -> Self {
        let one_in = one_in.max(1);
        let mut faults = BTreeMap::new();
        for index in 0..ops {
            let roll = splitmix64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if !roll.is_multiple_of(one_in) {
                continue;
            }
            let action = match (roll >> 8) % 4 {
                0 => FaultAction::DropBeforeRequest,
                1 => FaultAction::DropAfterRequest,
                2 => FaultAction::TruncateReply,
                _ => FaultAction::DelayMillis(1 + (roll >> 16) % 3),
            };
            faults.insert(index, action);
        }
        Self { faults }
    }

    /// The scheduled fault for `index`, if any.
    #[must_use]
    pub fn action_at(&self, index: u64) -> Option<FaultAction> {
        self.faults.get(&index).copied()
    }

    /// How many faults the schedule contains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The largest scheduled index, if any — operations past it run clean.
    #[must_use]
    pub fn last_index(&self) -> Option<u64> {
        self.faults.keys().next_back().copied()
    }
}

/// SplitMix64 — the standard 64-bit mixer; deterministic, dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// FaultInjectingTransport
// ---------------------------------------------------------------------------

/// A [`PirTransport`] wrapper that injects scheduled faults.
///
/// Every trait method consumes one index of the wrapper's global
/// operation counter (queries, scans, updates, epoch fetches and replays
/// all count), checks the [`FaultSchedule`], and either runs the inner
/// transport untouched or injects the scheduled [`FaultAction`]. Injected
/// failures surface as [`PirError::Protocol`] with an
/// `injected fault`-prefixed reason so tests can tell them from real
/// failures.
pub struct FaultInjectingTransport {
    inner: Box<dyn PirTransport>,
    schedule: FaultSchedule,
    next_op: u64,
    injected: u64,
}

impl std::fmt::Debug for FaultInjectingTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjectingTransport")
            .field("schedule", &self.schedule)
            .field("next_op", &self.next_op)
            .field("injected", &self.injected)
            .finish_non_exhaustive()
    }
}

impl FaultInjectingTransport {
    /// Wraps `inner`, injecting the faults in `schedule`.
    #[must_use]
    pub fn new(inner: Box<dyn PirTransport>, schedule: FaultSchedule) -> Self {
        Self {
            inner,
            schedule,
            next_op: 0,
            injected: 0,
        }
    }

    /// How many operations have passed through the wrapper so far.
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.next_op
    }

    /// How many faults have actually been injected so far (delays count).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Runs one operation through the schedule.
    ///
    /// `DropAfterRequest` and `TruncateReply` *execute* the inner call and
    /// discard its result — the server-side effect happens, the client
    /// never learns of it — which is precisely the ambiguity the scheme's
    /// epoch-pinned recovery has to resolve.
    fn around<T>(
        &mut self,
        op: &str,
        call: impl FnOnce(&mut dyn PirTransport) -> Result<T, PirError>,
    ) -> Result<T, PirError> {
        let index = self.next_op;
        self.next_op += 1;
        let injected_error = |detail: &str| PirError::Protocol {
            reason: format!("injected fault at operation {index} ({op}): {detail}"),
        };
        match self.schedule.action_at(index) {
            None => call(self.inner.as_mut()),
            Some(FaultAction::DelayMillis(ms)) => {
                self.injected += 1;
                std::thread::sleep(Duration::from_millis(ms));
                call(self.inner.as_mut())
            }
            Some(FaultAction::DropBeforeRequest) => {
                self.injected += 1;
                Err(injected_error(
                    "connection dropped before the request was sent",
                ))
            }
            Some(FaultAction::DropAfterRequest) => {
                self.injected += 1;
                let _ = call(self.inner.as_mut());
                Err(injected_error(
                    "connection dropped after the request was sent; the reply was lost",
                ))
            }
            Some(FaultAction::TruncateReply) => {
                self.injected += 1;
                let _ = call(self.inner.as_mut());
                Err(injected_error("reply frame truncated mid-body"))
            }
        }
    }
}

impl PirTransport for FaultInjectingTransport {
    fn server_info(&mut self) -> Result<ServerInfo, PirError> {
        self.around("server_info", |inner| inner.server_info())
    }

    fn query_batch(&mut self, shares: &[QueryShare]) -> Result<TransportBatch, PirError> {
        self.around("query_batch", |inner| inner.query_batch(shares))
    }

    fn scan_selector(&mut self, selector: &SelectorVector) -> Result<ScanResult, PirError> {
        self.around("scan_selector", |inner| inner.scan_selector(selector))
    }

    fn apply_updates(&mut self, updates: &[(u64, Vec<u8>)]) -> Result<UpdateOutcome, PirError> {
        self.around("apply_updates", |inner| inner.apply_updates(updates))
    }

    fn epoch_info(&mut self) -> Result<EpochInfo, PirError> {
        self.around("epoch_info", |inner| inner.epoch_info())
    }

    fn replay_updates(&mut self, from_epoch: u64) -> Result<Vec<UpdateBatch>, PirError> {
        self.around("replay_updates", |inner| inner.replay_updates(from_epoch))
    }
}

// ---------------------------------------------------------------------------
// FaultProxy
// ---------------------------------------------------------------------------

/// How long the proxy waits on either side of a relay before giving up on
/// the connection pair. Generous: it only matters when a test deadlocks.
const PROXY_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// How often the accept loop wakes up to observe a shutdown request.
const PROXY_POLL: Duration = Duration::from_millis(20);

/// A frame-aware TCP proxy that injects faults between a
/// [`crate::transport::TcpTransport`] and a live server.
///
/// The proxy accepts client connections on its own loopback port and
/// relays the wire protocol to `upstream` in lock-step (one client frame
/// forwarded, one server frame relayed back — the request/reply shape of
/// the protocol after the handshake). Client frames are counted globally
/// across connections; when a frame's index has a scheduled
/// [`FaultAction`], the proxy kills or mangles the *connection pair* —
/// the listener survives, so a reconnecting client reaches the same
/// backend again. This is what lets a test drive the transport's
/// reconnect + re-handshake + retry machinery deterministically.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    frames: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts a proxy on an ephemeral loopback port, relaying to
    /// `upstream` and injecting `schedule` (indexed by client frame:
    /// handshake `Hello`s and `Goodbye`s count too, including those of
    /// reconnects).
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] if the listener cannot bind or
    /// `upstream` does not resolve.
    pub fn start(upstream: impl ToSocketAddrs, schedule: FaultSchedule) -> Result<Self, PirError> {
        let upstream: Vec<SocketAddr> = upstream
            .to_socket_addrs()
            .map_err(|err| PirError::Protocol {
                reason: format!("fault proxy could not resolve upstream: {err}"),
            })?
            .collect();
        if upstream.is_empty() {
            return Err(PirError::Protocol {
                reason: "fault proxy upstream resolved to no addresses".into(),
            });
        }
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|err| PirError::Protocol {
            reason: format!("fault proxy could not bind: {err}"),
        })?;
        let addr = listener.local_addr().map_err(|err| PirError::Protocol {
            reason: format!("fault proxy local_addr failed: {err}"),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|err| PirError::Protocol {
                reason: format!("fault proxy could not set nonblocking accept: {err}"),
            })?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let frames = Arc::new(AtomicU64::new(0));
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            let frames = Arc::clone(&frames);
            let schedule = Arc::new(schedule);
            std::thread::spawn(move || {
                accept_loop(&listener, &upstream, &schedule, &shutdown, &frames)
            })
        };
        Ok(Self {
            addr,
            shutdown,
            frames,
            handle: Some(handle),
        })
    }

    /// The proxy's listening address — point the client transport here.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many client frames the proxy has seen so far (all connections).
    #[must_use]
    pub fn frames_seen(&self) -> u64 {
        self.frames.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins the proxy thread. In-flight connection
    /// pairs are abandoned (their relay threads exit on the next I/O).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: &[SocketAddr],
    schedule: &Arc<FaultSchedule>,
    shutdown: &Arc<AtomicBool>,
    frames: &Arc<AtomicU64>,
) {
    let mut relays = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let upstream = upstream.to_vec();
                let schedule = Arc::clone(schedule);
                let frames = Arc::clone(frames);
                relays.push(std::thread::spawn(move || {
                    relay_connection(client, &upstream, &schedule, &frames);
                }));
            }
            Err(ref err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(PROXY_POLL);
            }
            Err(_) => break,
        }
    }
    // Relay threads exit on their own once their sockets die (bounded by
    // PROXY_IO_TIMEOUT); join them so shutdown leaves nothing running.
    for relay in relays {
        let _ = relay.join();
    }
}

/// Relays one client connection to the upstream server in lock-step —
/// one client frame forward, one server frame back — injecting any fault
/// scheduled for a client frame's global index. Returning closes both
/// sockets (dropped), which is exactly how faults "kill the connection".
fn relay_connection(
    client: TcpStream,
    upstream: &[SocketAddr],
    schedule: &FaultSchedule,
    frames: &AtomicU64,
) {
    let Ok(server) = TcpStream::connect(upstream) else {
        return;
    };
    let mut client = client;
    let mut server = server;
    for stream in [&client, &server] {
        let _ = stream.set_read_timeout(Some(PROXY_IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(PROXY_IO_TIMEOUT));
        let _ = stream.set_nodelay(true);
    }
    loop {
        let Some(request) = read_frame(&mut client) else {
            return;
        };
        let index = frames.fetch_add(1, Ordering::SeqCst);
        match schedule.action_at(index) {
            Some(FaultAction::DropBeforeRequest) => {
                // The server never sees the request.
                let _ = client.shutdown(Shutdown::Both);
                let _ = server.shutdown(Shutdown::Both);
                return;
            }
            Some(FaultAction::DropAfterRequest) => {
                // The server executes the request; the client never sees
                // the reply (the server's write fails into a dead socket).
                if server.write_all(&request).is_ok() {
                    let _ = server.flush();
                    // Wait for the reply so the server has definitely
                    // *processed* the request before the client observes
                    // the drop — then discard it.
                    let _ = read_frame(&mut server);
                }
                let _ = client.shutdown(Shutdown::Both);
                let _ = server.shutdown(Shutdown::Both);
                return;
            }
            Some(FaultAction::TruncateReply) => {
                // Forward the request, then cut the reply off mid-frame:
                // the client's decoder must reject it without panicking.
                if server.write_all(&request).is_ok() {
                    let _ = server.flush();
                    if let Some(reply) = read_frame(&mut server) {
                        let keep = reply.len().saturating_sub(1).max(FRAME_HEADER_BYTES - 1);
                        let _ = client.write_all(&reply[..keep.min(reply.len())]);
                        let _ = client.flush();
                    }
                }
                let _ = client.shutdown(Shutdown::Both);
                let _ = server.shutdown(Shutdown::Both);
                return;
            }
            Some(FaultAction::DelayMillis(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
            }
            None => {}
        }
        if server.write_all(&request).is_err() || server.flush().is_err() {
            return;
        }
        let Some(reply) = read_frame(&mut server) else {
            // Goodbye frames get no reply: the server closes, we close.
            return;
        };
        if client.write_all(&reply).is_err() || client.flush().is_err() {
            return;
        }
    }
}

/// Reads one length-prefixed wire frame (header + body) or `None` on any
/// I/O error, EOF, or an implausible length (the relay then just closes —
/// the endpoints' own decoders produce the actual protocol errors).
fn read_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    stream.read_exact(&mut header).ok()?;
    let body_len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if body_len == 0 || body_len > MAX_FRAME_BYTES {
        return None;
    }
    // The length prefix covers tag + body; the tag byte is already in the
    // header buffer, so `body_len - 1` bytes remain on the stream.
    let mut frame = vec![0u8; FRAME_HEADER_BYTES + body_len - 1];
    frame[..FRAME_HEADER_BYTES].copy_from_slice(&header);
    stream.read_exact(&mut frame[FRAME_HEADER_BYTES..]).ok()?;
    Some(frame)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::database::Database;
    use crate::engine::{EngineConfig, QueryEngine};
    use crate::server::cpu::{CpuPirServer, CpuServerConfig};
    use crate::transport::LocalTransport;

    fn wrapped(schedule: FaultSchedule) -> FaultInjectingTransport {
        let db = Arc::new(Database::random(32, 8, 5).unwrap());
        let backend = CpuPirServer::new(db, CpuServerConfig::baseline()).unwrap();
        let engine = QueryEngine::single(backend, EngineConfig::default()).unwrap();
        FaultInjectingTransport::new(Box::new(LocalTransport::new(engine)), schedule)
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_seed_sensitive() {
        let a = FaultSchedule::seeded(42, 200, 5);
        let b = FaultSchedule::seeded(42, 200, 5);
        let c = FaultSchedule::seeded(43, 200, 5);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must give different schedules");
        assert!(!a.is_empty(), "1-in-5 over 200 ops must schedule faults");
        assert!(a.last_index().unwrap() < 200);
    }

    #[test]
    fn scheduled_operations_fault_and_unscheduled_ones_pass_through() {
        let schedule = FaultSchedule::none()
            .with_fault(1, FaultAction::DropBeforeRequest)
            .with_fault(2, FaultAction::DropAfterRequest);
        let mut transport = wrapped(schedule);
        // Op 0: clean.
        assert!(transport.server_info().is_ok());
        // Op 1: dropped before the server sees it — no epoch movement.
        let err = transport.apply_updates(&[(0, vec![1; 8])]).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        // Op 2: executes on the server, reply lost.
        assert!(transport.apply_updates(&[(1, vec![2; 8])]).is_err());
        // Op 3: clean again; the epoch shows exactly ONE commit.
        assert_eq!(transport.epoch_info().unwrap().current_epoch, 1);
        assert_eq!(transport.operations(), 4);
        assert_eq!(transport.injected(), 2);
    }
}
