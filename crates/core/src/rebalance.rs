//! Online shard rebalancing: *measured* skew drives the layout.
//!
//! The capacity planner ([`crate::capacity`]) sizes shards from declared
//! (or probe-calibrated) profiles, but `BENCH_shardplan.json` shows those
//! predictions diverging from reality by orders of magnitude once real
//! traffic runs. This module closes the loop without draining traffic:
//!
//! * [`RebalancePlanner`] consumes the engine's **measured** per-shard
//!   timings ([`crate::engine::QueryEngine::shard_timings`], per-query
//!   normalized) and emits a bounded [`MigrationPlan`] — at most
//!   [`RebalanceConfig::max_records_per_round`] records move per round,
//!   and nothing moves at all while the measured skew stays under the
//!   [`RebalanceConfig::min_skew`] hysteresis threshold, so measurement
//!   noise cannot thrash the layout;
//! * [`crate::engine::QueryEngine::rebalance`] executes the plan live:
//!   the moving range is read out of the donor shard's copy-on-write
//!   replica, pushed into the rebuilt receiver through the ordinary
//!   all-or-nothing [`crate::batch::UpdatableBackend`] update path (so a
//!   PIM receiver coalesces the incoming records into MRAM exactly like a
//!   bulk update), and the new [`crate::shard::ShardPlan`] is swapped in
//!   atomically under the engine's update/query serialization.
//!
//! A rebalance is **just another epoch step**: the engine journals the
//! moved records as an identity update batch (global indices, unchanged
//! bytes), so replica recovery (PR 7) and router catch-up (PR 8) replay
//! it like any other batch — a rebalanced replica and its un-rebalanced
//! peer converge on the same epoch and still reconstruct byte-identical
//! records, because shard layout was never visible to clients in the
//! first place (the PIR answer is a XOR over selected records, wherever
//! they live).

use crate::engine::ShardTiming;
use crate::error::PirError;
use crate::shard::ShardPlan;

/// Bounds and hysteresis of the online rebalancer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceConfig {
    /// Upper bound on records moved per planning round. Keeps one
    /// rebalance's copy + MRAM push (and the journaled identity batch)
    /// small enough to fit the update windows between query waves.
    pub max_records_per_round: u64,
    /// Hysteresis: no migration is planned while the measured per-query
    /// scan skew (slowest shard over the mean, see
    /// [`crate::engine::QueryEngine::scan_skew`]) stays below this
    /// threshold. Must be at least 1.0; values near 1.0 chase noise.
    pub min_skew: f64,
    /// Records a donor shard must retain — a shard can shrink but never
    /// empty out, because every backend needs at least one record.
    pub min_records_per_shard: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            max_records_per_round: 512,
            min_skew: 1.5,
            min_records_per_shard: 1,
        }
    }
}

impl RebalanceConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] when the per-round bound or the
    /// donor minimum is zero, or the skew threshold is below 1.0 (the
    /// skew metric's floor) or not finite.
    pub fn validate(&self) -> Result<(), PirError> {
        if self.max_records_per_round == 0 {
            return Err(PirError::Config {
                reason: "a rebalance round must be allowed to move at least one record".to_string(),
            });
        }
        if self.min_records_per_shard == 0 {
            return Err(PirError::Config {
                reason: "a donor shard must retain at least one record".to_string(),
            });
        }
        if !self.min_skew.is_finite() || self.min_skew < 1.0 {
            return Err(PirError::Config {
                reason: format!(
                    "the rebalance skew threshold must be a finite value >= 1.0 \
                     (measured skew is max/mean), got {}",
                    self.min_skew
                ),
            });
        }
        Ok(())
    }
}

/// One bounded migration: `records` records move across the shared
/// boundary between `donor` and an **adjacent** `receiver` (shards tile
/// the record space contiguously, so only boundary records can move
/// without renumbering the whole layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMove {
    /// The overloaded shard giving records up.
    pub donor: usize,
    /// The adjacent shard absorbing them (`donor ± 1`).
    pub receiver: usize,
    /// How many records cross the boundary (at least 1).
    pub records: u64,
}

/// A bounded, validated-on-apply sequence of [`RecordMove`]s — what the
/// [`RebalancePlanner`] emits and
/// [`crate::engine::QueryEngine::rebalance`] executes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The moves, applied in order to an evolving layout.
    pub moves: Vec<RecordMove>,
}

impl MigrationPlan {
    /// An empty plan (the planner's "balanced enough" answer).
    #[must_use]
    pub fn empty() -> Self {
        MigrationPlan::default()
    }

    /// Whether the plan moves nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Total records moved across all moves.
    #[must_use]
    pub fn records_moved(&self) -> u64 {
        self.moves.iter().map(|m| m.records).sum()
    }

    /// The shard plan after applying every move, in order, to `plan` —
    /// validating each move against the evolving layout.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] when a move names a shard outside the
    /// plan, a non-adjacent receiver, zero records, or would shrink its
    /// donor below one record.
    pub fn apply_to(&self, plan: &ShardPlan) -> Result<ShardPlan, PirError> {
        let mut ranges: Vec<std::ops::Range<u64>> = plan.ranges().to_vec();
        for (position, mv) in self.moves.iter().enumerate() {
            let shard_count = ranges.len();
            if mv.donor >= shard_count || mv.receiver >= shard_count {
                return Err(PirError::Config {
                    reason: format!(
                        "migration move {position} names shard {} -> {} but the plan has \
                         only {shard_count} shard(s)",
                        mv.donor, mv.receiver
                    ),
                });
            }
            if mv.donor.abs_diff(mv.receiver) != 1 {
                return Err(PirError::Config {
                    reason: format!(
                        "migration move {position} ({} -> {}) is not between adjacent \
                         shards: shards tile the record space contiguously, so only \
                         boundary records can change shards",
                        mv.donor, mv.receiver
                    ),
                });
            }
            if mv.records == 0 {
                return Err(PirError::Config {
                    reason: format!("migration move {position} moves zero records"),
                });
            }
            let donor_len = ranges[mv.donor].end - ranges[mv.donor].start;
            if mv.records >= donor_len {
                return Err(PirError::Config {
                    reason: format!(
                        "migration move {position} takes {} of donor shard {}'s \
                         {donor_len} record(s); a donor must retain at least one",
                        mv.records, mv.donor
                    ),
                });
            }
            if mv.receiver == mv.donor + 1 {
                // The donor's tail crosses the boundary downward.
                ranges[mv.donor].end -= mv.records;
                ranges[mv.receiver].start -= mv.records;
            } else {
                // The donor's head crosses the boundary upward.
                ranges[mv.donor].start += mv.records;
                ranges[mv.receiver].end += mv.records;
            }
        }
        ShardPlan::from_ranges(ranges)
    }
}

/// Plans bounded migrations from the engine's measured per-shard
/// timings. Stateless between rounds: every call looks only at the most
/// recent batch's measurements, and the hysteresis threshold (not
/// history) is what prevents thrash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalancePlanner {
    config: RebalanceConfig,
}

impl RebalancePlanner {
    /// Creates a planner with the given bounds.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] for an invalid configuration (see
    /// [`RebalanceConfig::validate`]).
    pub fn new(config: RebalanceConfig) -> Result<Self, PirError> {
        config.validate()?;
        Ok(RebalancePlanner { config })
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &RebalanceConfig {
        &self.config
    }

    /// Plans at most one bounded move from measured per-shard timings:
    /// the slowest shard (per-query hybrid seconds) donates boundary
    /// records to its faster adjacent neighbour, sized so the two
    /// shards' *measured per-record costs* predict equal times after the
    /// move, clamped to the per-round bound and the donor minimum.
    ///
    /// Returns an empty plan when there is nothing sound to do: fewer
    /// than two shards, no measurements yet (zeros before the first
    /// batch — including right after a rebalance, which resets the
    /// measurements so the next round re-measures the *new* layout
    /// before moving again), or skew below the hysteresis threshold.
    #[must_use]
    pub fn plan(&self, timings: &[ShardTiming]) -> MigrationPlan {
        if timings.len() < 2 {
            return MigrationPlan::empty();
        }
        let per_query: Vec<f64> = timings
            .iter()
            .map(ShardTiming::actual_seconds_per_query)
            .collect();
        let total: f64 = per_query.iter().sum();
        if total <= 0.0 {
            return MigrationPlan::empty();
        }
        let mean = total / per_query.len() as f64;
        let donor = per_query
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(shard, _)| shard)
            .expect("at least two shards");
        if per_query[donor] / mean < self.config.min_skew {
            return MigrationPlan::empty();
        }
        // The faster adjacent neighbour absorbs the donor's boundary
        // records (contiguous tiling: only adjacent shards can trade).
        let receiver = [donor.checked_sub(1), Some(donor + 1)]
            .into_iter()
            .flatten()
            .filter(|&n| n < timings.len())
            .min_by(|&a, &b| per_query[a].total_cmp(&per_query[b]));
        let Some(receiver) = receiver else {
            return MigrationPlan::empty();
        };
        if per_query[receiver] >= per_query[donor] {
            return MigrationPlan::empty();
        }
        let donor_records = timings[donor].range.end - timings[donor].range.start;
        let receiver_records = timings[receiver].range.end - timings[receiver].range.start;
        if donor_records <= self.config.min_records_per_shard || receiver_records == 0 {
            return MigrationPlan::empty();
        }
        // Measured per-record costs; moving m records changes the pair's
        // predicted times to (t_d - m*c_d, t_r + m*c_r), equal at
        // m = (t_d - t_r) / (c_d + c_r).
        let donor_cost = per_query[donor] / donor_records as f64;
        let receiver_cost = per_query[receiver] / receiver_records as f64;
        if donor_cost + receiver_cost <= 0.0 {
            return MigrationPlan::empty();
        }
        let balance_point = (per_query[donor] - per_query[receiver]) / (donor_cost + receiver_cost);
        let records = (balance_point.floor() as u64)
            .min(self.config.max_records_per_round)
            .min(donor_records - self.config.min_records_per_shard);
        if records == 0 {
            return MigrationPlan::empty();
        }
        MigrationPlan {
            moves: vec![RecordMove {
                donor,
                receiver,
                records,
            }],
        }
    }
}

/// What one [`crate::engine::QueryEngine::rebalance`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceOutcome {
    /// Records that changed shards (the size of the journaled identity
    /// batch). Zero means the plan was empty and nothing changed —
    /// including the epoch.
    pub records_moved: u64,
    /// Shards whose backends were rebuilt over a new record range.
    pub shards_rebuilt: usize,
    /// Bytes pushed to accelerator memory while applying the moved
    /// ranges through the receivers' update paths (zero for host-resident
    /// receivers).
    pub bytes_pushed: u64,
    /// Simulated transfer seconds of those pushes, as a critical path
    /// over the concurrently rebuilt shards.
    pub simulated_seconds: f64,
    /// The engine's database epoch after the rebalance.
    pub epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::phases::{PhaseBreakdown, PhaseTime};

    fn timing(shard: usize, range: std::ops::Range<u64>, seconds: f64) -> ShardTiming {
        let mut phases = PhaseBreakdown::zero();
        phases.dpxor = PhaseTime {
            wall_seconds: 0.0,
            simulated_seconds: Some(seconds),
        };
        ShardTiming {
            shard,
            range,
            predicted_scan_seconds: None,
            queries: 1,
            phases,
        }
    }

    #[test]
    fn config_bounds_are_validated() {
        assert!(RebalanceConfig::default().validate().is_ok());
        for bad in [
            RebalanceConfig {
                max_records_per_round: 0,
                ..RebalanceConfig::default()
            },
            RebalanceConfig {
                min_records_per_shard: 0,
                ..RebalanceConfig::default()
            },
            RebalanceConfig {
                min_skew: 0.5,
                ..RebalanceConfig::default()
            },
            RebalanceConfig {
                min_skew: f64::NAN,
                ..RebalanceConfig::default()
            },
        ] {
            assert!(matches!(bad.validate(), Err(PirError::Config { .. })));
        }
    }

    #[test]
    fn balanced_or_unmeasured_fleets_plan_nothing() {
        let planner = RebalancePlanner::new(RebalanceConfig::default()).unwrap();
        // No measurements yet.
        assert!(planner
            .plan(&[timing(0, 0..100, 0.0), timing(1, 100..200, 0.0)])
            .is_empty());
        // Balanced: skew 1.0 < 1.5.
        assert!(planner
            .plan(&[timing(0, 0..100, 1.0), timing(1, 100..200, 1.0)])
            .is_empty());
        // Single shard: nowhere to move.
        assert!(planner.plan(&[timing(0, 0..100, 9.0)]).is_empty());
    }

    #[test]
    fn skewed_fleets_move_boundary_records_to_the_faster_neighbour() {
        let planner = RebalancePlanner::new(RebalanceConfig::default()).unwrap();
        // Shard 1 is 4x the mean; shard 0 is the faster neighbour.
        let plan = planner.plan(&[
            timing(0, 0..100, 0.1),
            timing(1, 100..200, 1.0),
            timing(2, 200..300, 0.1),
        ]);
        assert_eq!(plan.moves.len(), 1);
        let mv = plan.moves[0];
        assert_eq!(mv.donor, 1);
        assert!(mv.receiver == 0 || mv.receiver == 2);
        assert!(mv.records >= 1);
        // Balance point: (1.0 - 0.1) / (1.0/100 + 0.1/100) = ~81 records.
        assert!(mv.records <= 100, "bounded by the donor's size");
    }

    #[test]
    fn the_per_round_cap_bounds_every_plan() {
        let config = RebalanceConfig {
            max_records_per_round: 5,
            ..RebalanceConfig::default()
        };
        let planner = RebalancePlanner::new(config).unwrap();
        let plan = planner.plan(&[timing(0, 0..1000, 10.0), timing(1, 1000..2000, 0.1)]);
        assert_eq!(plan.records_moved(), 5);
    }

    #[test]
    fn donors_never_shrink_below_the_minimum() {
        let config = RebalanceConfig {
            min_records_per_shard: 3,
            ..RebalanceConfig::default()
        };
        let planner = RebalancePlanner::new(config).unwrap();
        let plan = planner.plan(&[timing(0, 0..4, 10.0), timing(1, 4..1000, 0.001)]);
        assert_eq!(plan.records_moved(), 1, "4 records, 3 must remain");
        let plan = planner.plan(&[timing(0, 0..3, 10.0), timing(1, 3..1000, 0.001)]);
        assert!(plan.is_empty(), "at the minimum already");
    }

    #[test]
    fn apply_to_moves_the_shared_boundary() {
        let plan = ShardPlan::from_ranges(vec![0..100, 100..250, 250..300]).unwrap();
        let down = MigrationPlan {
            moves: vec![RecordMove {
                donor: 1,
                receiver: 2,
                records: 50,
            }],
        };
        let moved = down.apply_to(&plan).unwrap();
        assert_eq!(moved.ranges(), &[0..100, 100..200, 200..300]);
        let up = MigrationPlan {
            moves: vec![RecordMove {
                donor: 1,
                receiver: 0,
                records: 25,
            }],
        };
        let moved = up.apply_to(&plan).unwrap();
        assert_eq!(moved.ranges(), &[0..125, 125..250, 250..300]);
    }

    #[test]
    fn apply_to_rejects_unsound_moves() {
        let plan = ShardPlan::from_ranges(vec![0..100, 100..200, 200..300]).unwrap();
        let cases = [
            RecordMove {
                donor: 0,
                receiver: 2,
                records: 10,
            }, // not adjacent
            RecordMove {
                donor: 0,
                receiver: 1,
                records: 0,
            }, // zero records
            RecordMove {
                donor: 0,
                receiver: 1,
                records: 100,
            }, // empties the donor
            RecordMove {
                donor: 3,
                receiver: 2,
                records: 1,
            }, // out of range
        ];
        for mv in cases {
            let result = MigrationPlan { moves: vec![mv] }.apply_to(&plan);
            assert!(
                matches!(result, Err(PirError::Config { .. })),
                "move {mv:?} must be rejected"
            );
        }
    }

    #[test]
    fn sequential_moves_apply_to_the_evolving_layout() {
        let plan = ShardPlan::from_ranges(vec![0..100, 100..200]).unwrap();
        let chain = MigrationPlan {
            moves: vec![
                RecordMove {
                    donor: 0,
                    receiver: 1,
                    records: 60,
                },
                RecordMove {
                    donor: 0,
                    receiver: 1,
                    records: 39,
                },
            ],
        };
        let moved = chain.apply_to(&plan).unwrap();
        assert_eq!(moved.ranges(), &[0..1, 1..200]);
        // One more record would empty the donor.
        let chain = MigrationPlan {
            moves: vec![
                RecordMove {
                    donor: 0,
                    receiver: 1,
                    records: 60,
                },
                RecordMove {
                    donor: 0,
                    receiver: 1,
                    records: 40,
                },
            ],
        };
        assert!(chain.apply_to(&plan).is_err());
    }
}
