//! The versioned wire format spoken between PIR clients and servers.
//!
//! Every message is a **length-prefixed frame**:
//!
//! ```text
//! [ length: u32 LE ][ tag: u8 ][ body ... ]
//! ```
//!
//! where `length` counts the tag byte plus the body. All integers are
//! explicit little-endian (the vendored serde is a no-op shim, so the wire
//! encoding is hand-rolled here and nowhere else). A connection starts with
//! a handshake: the client sends [`Frame::Hello`] (which carries the
//! 4-byte protocol magic and the client's [`WIRE_VERSION`]) and the server
//! answers [`Frame::HelloAck`] with its own version and a
//! [`ServerInfo`] describing the database it serves.
//!
//! Decoding is hardened against hostile peers: frames longer than
//! [`MAX_FRAME_BYTES`] are rejected **before** any allocation, truncated or
//! trailing-garbage bodies decode to [`PirError::Protocol`] (never a
//! panic), and no length prefix inside a body can drive an allocation
//! larger than the already-bounded frame it arrived in.
//!
//! # Session multiplexing
//!
//! Many **logical sessions** can share one TCP connection: after the
//! (connection-level, unwrapped) handshake, a peer wraps a session's
//! frames in [`Frame::Mux`], which prefixes the inner frame with a `u32`
//! session id. Plain unwrapped frames keep their pre-multiplexing meaning
//! (they belong to the connection's root session), so a v1 client that
//! never sends `Mux` talks to a multiplexing server unchanged. A `Mux`
//! inside a `Mux` is a protocol violation on both the encode and decode
//! side. [`Frame::Overloaded`] is the server's typed load-shedding
//! refusal: the request was dropped before execution and may be retried
//! after the carried backoff hint.

use std::io::{Read, Write};

use impir_dpf::{DpfKey, PartyId, SelectorVector};

use crate::batch::UpdateOutcome;
use crate::error::PirError;
use crate::protocol::{QueryShare, ServerResponse};
use crate::server::phases::{PhaseBreakdown, PhaseTime};

/// The 4-byte protocol magic opening every connection.
pub const WIRE_MAGIC: [u8; 4] = *b"IMPR";

/// The protocol version this build speaks. Bumped on any incompatible
/// change to the frame layout; the handshake rejects mismatches.
pub const WIRE_VERSION: u16 = 1;

/// Hard upper bound on one frame's length field. A peer announcing a
/// larger frame is cut off before a single byte of it is buffered.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Bytes of framing around every body: the `u32` length prefix plus the
/// tag byte.
pub const FRAME_HEADER_BYTES: usize = 5;

/// Extra body bytes a [`Frame::Mux`] wrapper adds around its inner
/// frame's body: the `u32` session id plus the inner frame's tag byte.
pub const MUX_OVERHEAD_BYTES: usize = 4 + 1;

/// Fixed wire size of a [`PhaseTime`]: wall `f64`, presence flag, and the
/// simulated-seconds `f64` (zeroed when absent).
const PHASE_TIME_BYTES: usize = 8 + 1 + 8;

/// Fixed wire size of a [`PhaseBreakdown`] (five phases).
const PHASES_BYTES: usize = 5 * PHASE_TIME_BYTES;

/// Fixed wire size of a [`ServerInfo`].
const SERVER_INFO_BYTES: usize = 8 + 4 + 4 + 8;

/// What a server reports about itself during the handshake (and on
/// [`Frame::InfoRequest`]): the database geometry a client must match and
/// the server's current shard/epoch state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Number of records in the served database.
    pub num_records: u64,
    /// Record size in bytes.
    pub record_size: usize,
    /// Number of engine shards behind the server.
    pub shard_count: usize,
    /// The server's database epoch (see
    /// [`crate::engine::QueryEngine::database_epoch`]).
    pub epoch: u64,
}

/// Fixed wire size of an [`EpochInfo`].
const EPOCH_INFO_BYTES: usize = 8 + 8;

/// A server's answer to [`Frame::EpochInfoRequest`]: where its database
/// epoch stands and how far back its update journal can replay. A client
/// that detects replica divergence compares both replicas' `EpochInfo` to
/// decide which is behind and whether the journal still covers the lag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochInfo {
    /// The server's current database epoch.
    pub current_epoch: u64,
    /// The oldest epoch the server's journal can replay *from*: a peer at
    /// this epoch (or later) can be caught up; one behind it cannot.
    pub oldest_replayable: u64,
}

/// One protocol frame. See the module docs for the connection lifecycle;
/// the request/response pairing is `QueryBatch → ResponseBatch`,
/// `UpdateBatch → UpdateAck`, `InfoRequest → Info`,
/// `SelectorScan → SelectorResult`, `EpochInfoRequest → EpochInfo`,
/// `UpdateReplayRequest → UpdateReplay | JournalTruncated`, with `Error`
/// as the server's reply to any request it cannot serve and `Goodbye` as
/// the client's clean close.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: opens the connection. Carries the protocol magic
    /// and the client's wire version.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u16,
    },
    /// Server → client: accepts the handshake.
    HelloAck {
        /// The server's [`WIRE_VERSION`].
        version: u16,
        /// The served database's geometry and state.
        info: ServerInfo,
    },
    /// Client → server: a batch of DPF query shares.
    QueryBatch {
        /// The shares, answered in order.
        shares: Vec<QueryShare>,
    },
    /// Server → client: the answers to one [`Frame::QueryBatch`].
    ResponseBatch {
        /// Database epoch the batch executed against.
        epoch: u64,
        /// Server-side wall time of the batch, in seconds.
        wall_seconds: f64,
        /// Server-side per-phase accounting of the batch.
        phases: PhaseBreakdown,
        /// Responses, in the same order as the request's shares.
        responses: Vec<ServerResponse>,
    },
    /// Client → server: a bulk database update (§3.3), pairs of global
    /// record index and replacement bytes.
    UpdateBatch {
        /// The update entries, applied all-or-nothing.
        updates: Vec<(u64, Vec<u8>)>,
    },
    /// Server → client: a successful [`Frame::UpdateBatch`].
    UpdateAck {
        /// The engine's aggregated update outcome.
        outcome: UpdateOutcome,
    },
    /// Client → server: asks for a fresh [`ServerInfo`].
    InfoRequest,
    /// Server → client: the answer to [`Frame::InfoRequest`].
    Info {
        /// The served database's geometry and state.
        info: ServerInfo,
    },
    /// Client → server: a full-domain linear selector share to scan (the
    /// n-server naive scheme of [`crate::multi_server`]).
    SelectorScan {
        /// The selector share, one bit per record.
        selector: SelectorVector,
    },
    /// Server → client: the XOR subresult of one [`Frame::SelectorScan`].
    SelectorResult {
        /// Database epoch the scan executed against. An n-server query is
        /// `n` sequential scans; the client cross-checks these so an
        /// update landing between scans is detected instead of XOR-ing
        /// subresults from different database versions.
        epoch: u64,
        /// The record-sized XOR payload.
        payload: Vec<u8>,
        /// Server-side per-phase accounting of the scan.
        phases: PhaseBreakdown,
    },
    /// Client → server: asks where the server's epoch and journal stand.
    EpochInfoRequest,
    /// Server → client: the answer to [`Frame::EpochInfoRequest`].
    EpochInfo {
        /// The server's epoch and journal coverage.
        info: EpochInfo,
    },
    /// Client → server: asks for every update batch applied after
    /// `from_epoch`, so a replica stuck at that epoch can catch up.
    UpdateReplayRequest {
        /// The requester's (lagging) epoch.
        from_epoch: u64,
    },
    /// Server → client: the batches a [`Frame::UpdateReplayRequest`] asked
    /// for — applying them in order advances a replica from `from_epoch`
    /// to the server's epoch at reply time.
    UpdateReplay {
        /// The missed batches, oldest first; batch `i` moves the database
        /// from epoch `from_epoch + i` to `from_epoch + i + 1`.
        batches: Vec<Vec<(u64, Vec<u8>)>>,
    },
    /// Server → client: the journal no longer reaches back to the
    /// requested epoch. Carried as a dedicated frame (not a generic
    /// [`Frame::Error`]) so clients can distinguish "cannot recover
    /// automatically" from transient failures and fail closed.
    JournalTruncated {
        /// The epoch the request asked to replay from.
        from_epoch: u64,
        /// The oldest epoch the journal can still replay from.
        oldest_replayable: u64,
        /// The server's current epoch.
        current_epoch: u64,
    },
    /// Server → client: the request could not be served. The connection
    /// stays usable unless the error was a framing violation.
    Error {
        /// Human-readable description, also carried into
        /// [`PirError::Protocol`] on the client.
        message: String,
    },
    /// Client → server: clean connection close.
    Goodbye,
    /// Either direction: a frame addressed to one logical session. Many
    /// logical sessions share a TCP connection by wrapping their frames
    /// in `Mux`; the body carries the session id followed by the inner
    /// frame's tag and body (the outer length prefix already bounds
    /// both, so the inner frame gets no redundant prefix of its own).
    /// Nesting a `Mux` inside a `Mux` is rejected by encoder and decoder
    /// alike.
    Mux {
        /// The logical session the inner frame belongs to.
        session: u32,
        /// The wrapped frame.
        frame: Box<Frame>,
    },
    /// Server → client: the admission queue is saturated and the request
    /// was shed **without being executed**. Typed (not a generic
    /// [`Frame::Error`]) so clients can back off and retry instead of
    /// failing the query; the connection stays usable.
    Overloaded {
        /// The server's backoff hint: milliseconds to wait before
        /// retrying.
        retry_after_ms: u64,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_QUERY_BATCH: u8 = 3;
const TAG_RESPONSE_BATCH: u8 = 4;
const TAG_UPDATE_BATCH: u8 = 5;
const TAG_UPDATE_ACK: u8 = 6;
const TAG_INFO_REQUEST: u8 = 7;
const TAG_INFO: u8 = 8;
const TAG_SELECTOR_SCAN: u8 = 9;
const TAG_SELECTOR_RESULT: u8 = 10;
const TAG_ERROR: u8 = 11;
const TAG_GOODBYE: u8 = 12;
const TAG_EPOCH_INFO_REQUEST: u8 = 13;
const TAG_EPOCH_INFO: u8 = 14;
const TAG_UPDATE_REPLAY_REQUEST: u8 = 15;
const TAG_UPDATE_REPLAY: u8 = 16;
const TAG_JOURNAL_TRUNCATED: u8 = 17;
const TAG_MUX: u8 = 18;
const TAG_OVERLOADED: u8 = 19;

/// Shorthand for a [`PirError::Protocol`].
pub(crate) fn protocol_error(reason: impl Into<String>) -> PirError {
    PirError::Protocol {
        reason: reason.into(),
    }
}

/// Maps a transport-level I/O failure into [`PirError::Protocol`].
pub(crate) fn io_error(context: &str, err: &std::io::Error) -> PirError {
    protocol_error(format!("{context}: {err}"))
}

// ---------------------------------------------------------------------------
// Little-endian body writer/reader.
// ---------------------------------------------------------------------------

struct BodyWriter {
    buf: Vec<u8>,
}

impl BodyWriter {
    fn with_capacity(capacity: usize) -> Self {
        BodyWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    fn u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    fn f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u32` length prefix followed by the bytes.
    fn bytes(&mut self, bytes: &[u8]) {
        debug_assert!(bytes.len() <= u32::MAX as usize);
        self.u32(bytes.len() as u32);
        self.raw(bytes);
    }

    fn phase_time(&mut self, time: &PhaseTime) {
        self.f64(time.wall_seconds);
        match time.simulated_seconds {
            None => {
                self.u8(0);
                self.f64(0.0);
            }
            Some(simulated) => {
                self.u8(1);
                self.f64(simulated);
            }
        }
    }

    fn phases(&mut self, phases: &PhaseBreakdown) {
        self.phase_time(&phases.eval);
        self.phase_time(&phases.copy_to_pim);
        self.phase_time(&phases.dpxor);
        self.phase_time(&phases.copy_from_pim);
        self.phase_time(&phases.aggregate);
    }

    fn server_info(&mut self, info: &ServerInfo) {
        self.u64(info.num_records);
        debug_assert!(info.record_size <= u32::MAX as usize);
        self.u32(info.record_size as u32);
        debug_assert!(info.shard_count <= u32::MAX as usize);
        self.u32(info.shard_count as u32);
        self.u64(info.epoch);
    }

    fn epoch_info(&mut self, info: &EpochInfo) {
        self.u64(info.current_epoch);
        self.u64(info.oldest_replayable);
    }
}

struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BodyReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, count: usize) -> Result<&'a [u8], PirError> {
        if count > self.remaining() {
            return Err(protocol_error(format!(
                "truncated frame body: wanted {count} more bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + count];
        self.pos += count;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PirError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, PirError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, PirError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, PirError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, PirError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a `u32`-length-prefixed byte string. The length is validated
    /// against the bytes actually present **before** anything is copied, so
    /// a hostile prefix cannot drive an allocation beyond the (already
    /// size-capped) frame.
    fn bytes(&mut self) -> Result<&'a [u8], PirError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn phase_time(&mut self) -> Result<PhaseTime, PirError> {
        let wall_seconds = self.f64()?;
        let flag = self.u8()?;
        let simulated = self.f64()?;
        let simulated_seconds = match flag {
            0 => None,
            1 => Some(simulated),
            other => {
                return Err(protocol_error(format!(
                    "invalid phase-time presence flag {other}"
                )))
            }
        };
        Ok(PhaseTime {
            wall_seconds,
            simulated_seconds,
        })
    }

    fn phases(&mut self) -> Result<PhaseBreakdown, PirError> {
        Ok(PhaseBreakdown {
            eval: self.phase_time()?,
            copy_to_pim: self.phase_time()?,
            dpxor: self.phase_time()?,
            copy_from_pim: self.phase_time()?,
            aggregate: self.phase_time()?,
        })
    }

    fn server_info(&mut self) -> Result<ServerInfo, PirError> {
        Ok(ServerInfo {
            num_records: self.u64()?,
            record_size: self.u32()? as usize,
            shard_count: self.u32()? as usize,
            epoch: self.u64()?,
        })
    }

    fn epoch_info(&mut self) -> Result<EpochInfo, PirError> {
        Ok(EpochInfo {
            current_epoch: self.u64()?,
            oldest_replayable: self.u64()?,
        })
    }

    fn finish(self) -> Result<(), PirError> {
        if self.remaining() != 0 {
            return Err(protocol_error(format!(
                "{} bytes of trailing garbage after frame body",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Per-item wire sizes. `QueryShare::size_bytes` / `ServerResponse::size_bytes`
// delegate here so the sizes the bench harness reports are the bytes a
// socket actually carries.
// ---------------------------------------------------------------------------

/// Serialized size of one [`QueryShare`] inside a [`Frame::QueryBatch`]:
/// the query id, the key-length prefix and the key bytes.
#[must_use]
pub fn share_wire_bytes(share: &QueryShare) -> usize {
    8 + 4 + share.key.size_bytes()
}

/// Serialized size of one [`ServerResponse`] inside a
/// [`Frame::ResponseBatch`]: the query id, the party byte, the
/// payload-length prefix and the payload.
#[must_use]
pub fn response_wire_bytes(response: &ServerResponse) -> usize {
    8 + 1 + 4 + response.payload.len()
}

/// Total on-the-wire size of the [`Frame::QueryBatch`] carrying `shares`
/// (framing included) — the upload cost of one batch.
#[must_use]
pub fn query_batch_frame_bytes(shares: &[QueryShare]) -> usize {
    FRAME_HEADER_BYTES + 4 + shares.iter().map(share_wire_bytes).sum::<usize>()
}

/// Total on-the-wire size of the [`Frame::ResponseBatch`] carrying
/// `responses` (framing, epoch, timing and phases included) — the download
/// cost of one batch.
#[must_use]
pub fn response_batch_frame_bytes(responses: &[ServerResponse]) -> usize {
    FRAME_HEADER_BYTES
        + 8
        + 8
        + PHASES_BYTES
        + 4
        + responses.iter().map(response_wire_bytes).sum::<usize>()
}

/// Total on-the-wire size of the [`Frame::UpdateBatch`] carrying `updates`.
#[must_use]
pub fn update_batch_frame_bytes(updates: &[(u64, Vec<u8>)]) -> usize {
    FRAME_HEADER_BYTES
        + 4
        + updates
            .iter()
            .map(|(_, bytes)| 8 + 4 + bytes.len())
            .sum::<usize>()
}

/// Total on-the-wire size of the [`Frame::UpdateReplay`] carrying
/// `batches` — the download cost of one catch-up.
#[must_use]
pub fn update_replay_frame_bytes(batches: &[Vec<(u64, Vec<u8>)>]) -> usize {
    FRAME_HEADER_BYTES
        + 4
        + batches
            .iter()
            // Per batch: an entry count, then each entry's index, length
            // prefix and bytes — the same layout an UpdateBatch body uses.
            .map(|updates| update_batch_frame_bytes(updates) - FRAME_HEADER_BYTES)
            .sum::<usize>()
}

/// Total on-the-wire size of the [`Frame::SelectorScan`] carrying
/// `selector` — the per-server upload cost of one naive n-server query.
#[must_use]
pub fn selector_scan_frame_bytes(selector: &SelectorVector) -> usize {
    selector_scan_frame_bytes_for_bits(selector.len())
}

/// [`selector_scan_frame_bytes`] for a selector of `bits` bits, without
/// needing the selector itself. Selectors travel in their packed word
/// layout (little-endian `u64`s, the same bytes that go to DPU MRAM), so
/// the size rounds up to whole words.
#[must_use]
pub fn selector_scan_frame_bytes_for_bits(bits: usize) -> usize {
    FRAME_HEADER_BYTES + 8 + 4 + bits.div_ceil(64) * 8
}

impl Frame {
    /// The frame's body size on the wire (excluding the 5 framing bytes).
    fn body_bytes(&self) -> usize {
        match self {
            Frame::Hello { .. } => 4 + 2,
            Frame::HelloAck { .. } => 2 + SERVER_INFO_BYTES,
            Frame::QueryBatch { shares } => query_batch_frame_bytes(shares) - FRAME_HEADER_BYTES,
            Frame::ResponseBatch { responses, .. } => {
                response_batch_frame_bytes(responses) - FRAME_HEADER_BYTES
            }
            Frame::UpdateBatch { updates } => {
                update_batch_frame_bytes(updates) - FRAME_HEADER_BYTES
            }
            Frame::UpdateAck { .. } => 8 + 8 + 8 + 8,
            Frame::InfoRequest | Frame::Goodbye => 0,
            Frame::Info { .. } => SERVER_INFO_BYTES,
            Frame::SelectorScan { selector } => {
                selector_scan_frame_bytes(selector) - FRAME_HEADER_BYTES
            }
            Frame::SelectorResult { payload, .. } => 8 + 4 + payload.len() + PHASES_BYTES,
            Frame::EpochInfoRequest => 0,
            Frame::EpochInfo { .. } => EPOCH_INFO_BYTES,
            Frame::UpdateReplayRequest { .. } => 8,
            Frame::UpdateReplay { batches } => {
                update_replay_frame_bytes(batches) - FRAME_HEADER_BYTES
            }
            Frame::JournalTruncated { .. } => 8 + 8 + 8,
            Frame::Error { message } => 4 + message.len(),
            Frame::Mux { frame, .. } => MUX_OVERHEAD_BYTES + frame.body_bytes(),
            Frame::Overloaded { .. } => 8,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::HelloAck { .. } => TAG_HELLO_ACK,
            Frame::QueryBatch { .. } => TAG_QUERY_BATCH,
            Frame::ResponseBatch { .. } => TAG_RESPONSE_BATCH,
            Frame::UpdateBatch { .. } => TAG_UPDATE_BATCH,
            Frame::UpdateAck { .. } => TAG_UPDATE_ACK,
            Frame::InfoRequest => TAG_INFO_REQUEST,
            Frame::Info { .. } => TAG_INFO,
            Frame::SelectorScan { .. } => TAG_SELECTOR_SCAN,
            Frame::SelectorResult { .. } => TAG_SELECTOR_RESULT,
            Frame::EpochInfoRequest => TAG_EPOCH_INFO_REQUEST,
            Frame::EpochInfo { .. } => TAG_EPOCH_INFO,
            Frame::UpdateReplayRequest { .. } => TAG_UPDATE_REPLAY_REQUEST,
            Frame::UpdateReplay { .. } => TAG_UPDATE_REPLAY,
            Frame::JournalTruncated { .. } => TAG_JOURNAL_TRUNCATED,
            Frame::Error { .. } => TAG_ERROR,
            Frame::Goodbye => TAG_GOODBYE,
            Frame::Mux { .. } => TAG_MUX,
            Frame::Overloaded { .. } => TAG_OVERLOADED,
        }
    }

    /// The frame kind's name, for error messages (a `Debug` dump of a
    /// query batch would put whole keys in the message).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::HelloAck { .. } => "HelloAck",
            Frame::QueryBatch { .. } => "QueryBatch",
            Frame::ResponseBatch { .. } => "ResponseBatch",
            Frame::UpdateBatch { .. } => "UpdateBatch",
            Frame::UpdateAck { .. } => "UpdateAck",
            Frame::InfoRequest => "InfoRequest",
            Frame::Info { .. } => "Info",
            Frame::SelectorScan { .. } => "SelectorScan",
            Frame::SelectorResult { .. } => "SelectorResult",
            Frame::EpochInfoRequest => "EpochInfoRequest",
            Frame::EpochInfo { .. } => "EpochInfo",
            Frame::UpdateReplayRequest { .. } => "UpdateReplayRequest",
            Frame::UpdateReplay { .. } => "UpdateReplay",
            Frame::JournalTruncated { .. } => "JournalTruncated",
            Frame::Error { .. } => "Error",
            Frame::Goodbye => "Goodbye",
            Frame::Mux { .. } => "Mux",
            Frame::Overloaded { .. } => "Overloaded",
        }
    }

    /// Serializes the frame, framing bytes included.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] if the frame would exceed
    /// [`MAX_FRAME_BYTES`] — the encoder enforces the same bound the
    /// decoder does, so an oversized batch fails loudly at the sender
    /// instead of poisoning the connection.
    pub fn encode(&self) -> Result<Vec<u8>, PirError> {
        if let Frame::Mux { frame, .. } = self {
            if matches!(**frame, Frame::Mux { .. }) {
                return Err(protocol_error("Mux frame nested inside a Mux frame"));
            }
        }
        encode_with_body(self.tag(), self.body_bytes(), |w| self.write_body(w))
    }

    /// Writes the frame's body (everything after the tag byte) into `w`.
    fn write_body(&self, w: &mut BodyWriter) {
        match self {
            Frame::Hello { version } => {
                w.raw(&WIRE_MAGIC);
                w.u16(*version);
            }
            Frame::HelloAck { version, info } => {
                w.u16(*version);
                w.server_info(info);
            }
            Frame::QueryBatch { shares } => write_query_batch_body(w, shares),
            Frame::ResponseBatch {
                epoch,
                wall_seconds,
                phases,
                responses,
            } => {
                w.u64(*epoch);
                w.f64(*wall_seconds);
                w.phases(phases);
                w.u32(responses.len() as u32);
                for response in responses {
                    w.u64(response.query_id);
                    w.u8(response.party.index());
                    w.bytes(&response.payload);
                }
            }
            Frame::UpdateBatch { updates } => write_update_batch_body(w, updates),
            Frame::UpdateAck { outcome } => {
                w.u64(outcome.records_updated as u64);
                w.u64(outcome.bytes_pushed);
                w.f64(outcome.simulated_seconds);
                w.u64(outcome.epoch);
            }
            Frame::InfoRequest | Frame::Goodbye => {}
            Frame::Info { info } => w.server_info(info),
            Frame::SelectorScan { selector } => write_selector_scan_body(w, selector),
            Frame::SelectorResult {
                epoch,
                payload,
                phases,
            } => {
                w.u64(*epoch);
                w.bytes(payload);
                w.phases(phases);
            }
            Frame::EpochInfoRequest => {}
            Frame::EpochInfo { info } => w.epoch_info(info),
            Frame::UpdateReplayRequest { from_epoch } => w.u64(*from_epoch),
            Frame::UpdateReplay { batches } => {
                w.u32(batches.len() as u32);
                for updates in batches {
                    write_update_batch_body(w, updates);
                }
            }
            Frame::JournalTruncated {
                from_epoch,
                oldest_replayable,
                current_epoch,
            } => {
                w.u64(*from_epoch);
                w.u64(*oldest_replayable);
                w.u64(*current_epoch);
            }
            Frame::Error { message } => w.bytes(message.as_bytes()),
            Frame::Mux { session, frame } => {
                w.u32(*session);
                w.u8(frame.tag());
                frame.write_body(w);
            }
            Frame::Overloaded { retry_after_ms } => w.u64(*retry_after_ms),
        }
    }

    /// Parses one frame from a byte slice that must contain exactly the
    /// frame (framing bytes included — see also [`encode_query_batch`] /
    /// [`encode_update_batch`] for the borrowed hot-path encoders).
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] for truncated, oversized,
    /// trailing-garbage or otherwise malformed input. Never panics.
    pub fn decode(bytes: &[u8]) -> Result<Frame, PirError> {
        if bytes.len() < FRAME_HEADER_BYTES {
            return Err(protocol_error("frame shorter than its header"));
        }
        let length = u32::from_le_bytes(bytes[..4].try_into().expect("4")) as usize;
        if length == 0 {
            return Err(protocol_error("frame with empty length"));
        }
        if length > MAX_FRAME_BYTES {
            return Err(protocol_error(format!(
                "frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
            )));
        }
        if bytes.len() != 4 + length {
            return Err(protocol_error(format!(
                "frame length field says {length} bytes but {} follow the prefix",
                bytes.len() - 4
            )));
        }
        Frame::decode_body(bytes[4], &bytes[FRAME_HEADER_BYTES..])
    }

    /// Parses a frame body given its tag.
    fn decode_body(tag: u8, body: &[u8]) -> Result<Frame, PirError> {
        let mut r = BodyReader::new(body);
        let frame = match tag {
            TAG_HELLO => {
                let magic = r.take(4)?;
                if magic != WIRE_MAGIC {
                    return Err(protocol_error(format!(
                        "bad protocol magic {magic:02x?} (expected {WIRE_MAGIC:02x?})"
                    )));
                }
                Frame::Hello { version: r.u16()? }
            }
            TAG_HELLO_ACK => Frame::HelloAck {
                version: r.u16()?,
                info: r.server_info()?,
            },
            TAG_QUERY_BATCH => {
                let count = r.u32()?;
                let mut shares = Vec::new();
                for _ in 0..count {
                    let query_id = r.u64()?;
                    let key = DpfKey::from_bytes(r.bytes()?).map_err(|err| {
                        protocol_error(format!("malformed DPF key in query batch: {err}"))
                    })?;
                    shares.push(QueryShare::new(query_id, key));
                }
                Frame::QueryBatch { shares }
            }
            TAG_RESPONSE_BATCH => {
                let epoch = r.u64()?;
                let wall_seconds = r.f64()?;
                let phases = r.phases()?;
                let count = r.u32()?;
                let mut responses = Vec::new();
                for _ in 0..count {
                    let query_id = r.u64()?;
                    let party = match r.u8()? {
                        0 => PartyId::Server1,
                        1 => PartyId::Server2,
                        other => return Err(protocol_error(format!("invalid party byte {other}"))),
                    };
                    responses.push(ServerResponse::new(query_id, party, r.bytes()?.to_vec()));
                }
                Frame::ResponseBatch {
                    epoch,
                    wall_seconds,
                    phases,
                    responses,
                }
            }
            TAG_UPDATE_BATCH => {
                let count = r.u32()?;
                let mut updates = Vec::new();
                for _ in 0..count {
                    let index = r.u64()?;
                    updates.push((index, r.bytes()?.to_vec()));
                }
                Frame::UpdateBatch { updates }
            }
            TAG_UPDATE_ACK => Frame::UpdateAck {
                outcome: UpdateOutcome {
                    records_updated: usize::try_from(r.u64()?).map_err(|_| {
                        protocol_error("updated-record count exceeds this platform's usize")
                    })?,
                    bytes_pushed: r.u64()?,
                    simulated_seconds: r.f64()?,
                    epoch: r.u64()?,
                },
            },
            TAG_INFO_REQUEST => Frame::InfoRequest,
            TAG_INFO => Frame::Info {
                info: r.server_info()?,
            },
            TAG_SELECTOR_SCAN => {
                let bits = r.u64()?;
                let bit_len = usize::try_from(bits)
                    .map_err(|_| protocol_error("selector bit length exceeds usize"))?;
                let bytes = r.bytes()?;
                // Exactly the packed word layout — no shorter (truncated)
                // and no longer (smuggled payload after the words).
                if bytes.len() != bit_len.div_ceil(64) * 8 {
                    return Err(protocol_error(format!(
                        "selector of {bit_len} bits needs {} packed bytes, got {}",
                        bit_len.div_ceil(64) * 8,
                        bytes.len()
                    )));
                }
                let selector = SelectorVector::from_bytes(bytes, bit_len).ok_or_else(|| {
                    protocol_error(format!(
                        "selector of {} bytes cannot hold {bit_len} bits",
                        bytes.len()
                    ))
                })?;
                // Padding bits beyond `bit_len` must be clear: the scan
                // kernels rely on that invariant, and a hostile peer could
                // otherwise XOR phantom records into the subresult.
                let tail_bits = bit_len % 64;
                if tail_bits != 0 {
                    let last = *selector.words().last().expect("non-empty for tail bits");
                    if last >> tail_bits != 0 {
                        return Err(protocol_error(
                            "selector has padding bits set beyond its length",
                        ));
                    }
                }
                Frame::SelectorScan { selector }
            }
            TAG_SELECTOR_RESULT => Frame::SelectorResult {
                epoch: r.u64()?,
                payload: r.bytes()?.to_vec(),
                phases: r.phases()?,
            },
            TAG_ERROR => {
                let message = String::from_utf8(r.bytes()?.to_vec())
                    .map_err(|_| protocol_error("error message is not valid UTF-8"))?;
                Frame::Error { message }
            }
            TAG_GOODBYE => Frame::Goodbye,
            TAG_EPOCH_INFO_REQUEST => Frame::EpochInfoRequest,
            TAG_EPOCH_INFO => Frame::EpochInfo {
                info: r.epoch_info()?,
            },
            TAG_UPDATE_REPLAY_REQUEST => Frame::UpdateReplayRequest {
                from_epoch: r.u64()?,
            },
            TAG_UPDATE_REPLAY => {
                // Both counts are hostile input: the loops pull from the
                // (already size-capped) frame, so neither can drive an
                // allocation the frame bytes don't back.
                let batch_count = r.u32()?;
                let mut batches = Vec::new();
                for _ in 0..batch_count {
                    let count = r.u32()?;
                    let mut updates = Vec::new();
                    for _ in 0..count {
                        let index = r.u64()?;
                        updates.push((index, r.bytes()?.to_vec()));
                    }
                    batches.push(updates);
                }
                Frame::UpdateReplay { batches }
            }
            TAG_JOURNAL_TRUNCATED => Frame::JournalTruncated {
                from_epoch: r.u64()?,
                oldest_replayable: r.u64()?,
                current_epoch: r.u64()?,
            },
            TAG_MUX => {
                let session = r.u32()?;
                let inner_tag = r.u8()?;
                if inner_tag == TAG_MUX {
                    return Err(protocol_error("Mux frame nested inside a Mux frame"));
                }
                // The inner frame owns everything left in the body; its
                // own decoder enforces the no-trailing-garbage rule.
                let rest = r.remaining();
                let inner_body = r.take(rest)?;
                Frame::Mux {
                    session,
                    frame: Box::new(Frame::decode_body(inner_tag, inner_body)?),
                }
            }
            TAG_OVERLOADED => Frame::Overloaded {
                retry_after_ms: r.u64()?,
            },
            other => return Err(protocol_error(format!("unknown frame tag {other}"))),
        };
        r.finish()?;
        Ok(frame)
    }
}

fn write_query_batch_body(w: &mut BodyWriter, shares: &[QueryShare]) {
    w.u32(shares.len() as u32);
    for share in shares {
        w.u64(share.query_id);
        w.bytes(&share.key.to_bytes());
    }
}

fn write_update_batch_body(w: &mut BodyWriter, updates: &[(u64, Vec<u8>)]) {
    w.u32(updates.len() as u32);
    for (index, bytes) in updates {
        w.u64(*index);
        w.bytes(bytes);
    }
}

/// Streams the selector's packed words straight into the body — no
/// intermediate `to_bytes` allocation.
fn write_selector_scan_body(w: &mut BodyWriter, selector: &SelectorVector) {
    w.u64(selector.len() as u64);
    w.u32((selector.words().len() * 8) as u32);
    for word in selector.words() {
        w.raw(&word.to_le_bytes());
    }
}

/// Encodes the complete frame (header + tag + body) that `write_body`
/// produces, enforcing [`MAX_FRAME_BYTES`] like [`Frame::encode`].
fn encode_with_body(
    tag: u8,
    body_bytes: usize,
    write_body: impl FnOnce(&mut BodyWriter),
) -> Result<Vec<u8>, PirError> {
    if 1 + body_bytes > MAX_FRAME_BYTES {
        return Err(protocol_error(format!(
            "frame of {body_bytes} body bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    let mut w = BodyWriter::with_capacity(FRAME_HEADER_BYTES + body_bytes);
    w.u32((1 + body_bytes) as u32);
    w.u8(tag);
    write_body(&mut w);
    debug_assert_eq!(w.buf.len(), FRAME_HEADER_BYTES + body_bytes);
    Ok(w.buf)
}

/// Encodes a [`Frame::QueryBatch`] straight from a borrowed slice —
/// byte-identical to building the owned frame first, without cloning every
/// DPF key on the client's hot send path.
///
/// # Errors
///
/// Returns [`PirError::Protocol`] if the frame would exceed
/// [`MAX_FRAME_BYTES`].
pub fn encode_query_batch(shares: &[QueryShare]) -> Result<Vec<u8>, PirError> {
    encode_with_body(
        TAG_QUERY_BATCH,
        query_batch_frame_bytes(shares) - FRAME_HEADER_BYTES,
        |w| write_query_batch_body(w, shares),
    )
}

/// Encodes a [`Frame::UpdateBatch`] straight from a borrowed slice (see
/// [`encode_query_batch`]).
///
/// # Errors
///
/// Returns [`PirError::Protocol`] if the frame would exceed
/// [`MAX_FRAME_BYTES`].
pub fn encode_update_batch(updates: &[(u64, Vec<u8>)]) -> Result<Vec<u8>, PirError> {
    encode_with_body(
        TAG_UPDATE_BATCH,
        update_batch_frame_bytes(updates) - FRAME_HEADER_BYTES,
        |w| write_update_batch_body(w, updates),
    )
}

/// Encodes a [`Frame::SelectorScan`] straight from a borrowed selector
/// (see [`encode_query_batch`]) — the protocol's largest request payload,
/// sent once per server per naive n-server query.
///
/// # Errors
///
/// Returns [`PirError::Protocol`] if the frame would exceed
/// [`MAX_FRAME_BYTES`].
pub fn encode_selector_scan(selector: &SelectorVector) -> Result<Vec<u8>, PirError> {
    encode_with_body(
        TAG_SELECTOR_SCAN,
        selector_scan_frame_bytes(selector) - FRAME_HEADER_BYTES,
        |w| write_selector_scan_body(w, selector),
    )
}

/// Serializes `frame` into `writer`, returning the number of bytes put on
/// the wire.
///
/// # Errors
///
/// Returns [`PirError::Protocol`] for oversized frames and for I/O
/// failures.
pub fn write_frame(writer: &mut impl Write, frame: &Frame) -> Result<usize, PirError> {
    let encoded = frame.encode()?;
    writer
        .write_all(&encoded)
        .map_err(|err| io_error("writing frame", &err))?;
    writer
        .flush()
        .map_err(|err| io_error("flushing frame", &err))?;
    Ok(encoded.len())
}

/// Reads one frame from `reader`, returning it along with the number of
/// bytes taken off the wire.
///
/// # Errors
///
/// Returns [`PirError::Protocol`] for I/O failures (including a peer
/// closing mid-frame), oversized length prefixes — rejected before any
/// buffer is allocated — and malformed bodies.
pub fn read_frame(reader: &mut impl Read) -> Result<(Frame, usize), PirError> {
    let mut prefix = [0u8; 4];
    reader
        .read_exact(&mut prefix)
        .map_err(|err| io_error("reading frame length", &err))?;
    let length = u32::from_le_bytes(prefix) as usize;
    if length == 0 {
        return Err(protocol_error("frame with empty length"));
    }
    if length > MAX_FRAME_BYTES {
        return Err(protocol_error(format!(
            "frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    let mut buf = vec![0u8; length];
    reader
        .read_exact(&mut buf)
        .map_err(|err| io_error("reading frame body", &err))?;
    let frame = Frame::decode_body(buf[0], &buf[1..])?;
    Ok((frame, 4 + length))
}

#[cfg(test)]
mod tests {
    use super::*;
    use impir_dpf::gen::generate_keys;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_shares(count: usize) -> Vec<QueryShare> {
        let mut rng = StdRng::seed_from_u64(7);
        (0..count)
            .map(|i| {
                let (k1, k2) = generate_keys(10, (i as u64 * 37) % 1024, &mut rng).unwrap();
                QueryShare::new(i as u64, if i % 2 == 0 { k1 } else { k2 })
            })
            .collect()
    }

    fn sample_frames() -> Vec<Frame> {
        let info = ServerInfo {
            num_records: 4096,
            record_size: 32,
            shard_count: 3,
            epoch: 9,
        };
        let phases = PhaseBreakdown {
            eval: PhaseTime::host(0.25),
            dpxor: PhaseTime::pim(0.5, 0.0125),
            ..PhaseBreakdown::zero()
        };
        vec![
            Frame::Hello {
                version: WIRE_VERSION,
            },
            Frame::HelloAck {
                version: WIRE_VERSION,
                info,
            },
            Frame::QueryBatch {
                shares: sample_shares(3),
            },
            Frame::ResponseBatch {
                epoch: 4,
                wall_seconds: 0.75,
                phases,
                responses: vec![
                    ServerResponse::new(0, PartyId::Server1, vec![1, 2, 3]),
                    ServerResponse::new(1, PartyId::Server2, vec![4, 5, 6]),
                ],
            },
            Frame::UpdateBatch {
                updates: vec![(3, vec![0xAA; 8]), (77, vec![0x55; 8])],
            },
            Frame::UpdateAck {
                outcome: UpdateOutcome {
                    records_updated: 2,
                    bytes_pushed: 16,
                    simulated_seconds: 0.001,
                    epoch: 5,
                },
            },
            Frame::InfoRequest,
            Frame::Info { info },
            Frame::SelectorScan {
                selector: (0..321).map(|i| i % 5 == 0).collect(),
            },
            Frame::SelectorResult {
                epoch: 3,
                payload: vec![9; 32],
                phases,
            },
            Frame::Error {
                message: "no such record".to_string(),
            },
            Frame::Goodbye,
            Frame::EpochInfoRequest,
            Frame::EpochInfo {
                info: EpochInfo {
                    current_epoch: 12,
                    oldest_replayable: 5,
                },
            },
            Frame::UpdateReplayRequest { from_epoch: 7 },
            Frame::UpdateReplay {
                batches: vec![
                    vec![(3, vec![0xAA; 8]), (77, vec![0x55; 8])],
                    vec![],
                    vec![(0, vec![1, 2, 3])],
                ],
            },
            Frame::JournalTruncated {
                from_epoch: 2,
                oldest_replayable: 6,
                current_epoch: 12,
            },
            Frame::Mux {
                session: 3,
                frame: Box::new(Frame::QueryBatch {
                    shares: sample_shares(2),
                }),
            },
            Frame::Mux {
                session: u32::MAX,
                frame: Box::new(Frame::Goodbye),
            },
            Frame::Overloaded {
                retry_after_ms: 250,
            },
        ]
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        for frame in sample_frames() {
            let encoded = frame.encode().unwrap();
            assert_eq!(Frame::decode(&encoded).unwrap(), frame, "{frame:?}");
            let mut cursor = std::io::Cursor::new(encoded.clone());
            let (read, taken) = read_frame(&mut cursor).unwrap();
            assert_eq!(read, frame);
            assert_eq!(taken, encoded.len());
        }
    }

    #[test]
    fn encoded_length_matches_the_size_helpers() {
        let shares = sample_shares(4);
        let frame = Frame::QueryBatch {
            shares: shares.clone(),
        };
        assert_eq!(
            frame.encode().unwrap().len(),
            query_batch_frame_bytes(&shares)
        );

        let responses = vec![
            ServerResponse::new(0, PartyId::Server1, vec![0; 32]),
            ServerResponse::new(1, PartyId::Server2, vec![1; 32]),
        ];
        let frame = Frame::ResponseBatch {
            epoch: 0,
            wall_seconds: 0.0,
            phases: PhaseBreakdown::zero(),
            responses: responses.clone(),
        };
        assert_eq!(
            frame.encode().unwrap().len(),
            response_batch_frame_bytes(&responses)
        );

        let updates = vec![(0u64, vec![7u8; 16]), (5, vec![8; 16])];
        let frame = Frame::UpdateBatch {
            updates: updates.clone(),
        };
        assert_eq!(
            frame.encode().unwrap().len(),
            update_batch_frame_bytes(&updates)
        );

        let selector: SelectorVector = (0..100).map(|i| i % 2 == 0).collect();
        let frame = Frame::SelectorScan {
            selector: selector.clone(),
        };
        assert_eq!(
            frame.encode().unwrap().len(),
            selector_scan_frame_bytes(&selector)
        );

        let batches = vec![vec![(0u64, vec![7u8; 16])], vec![], vec![(5, vec![8; 16])]];
        let frame = Frame::UpdateReplay {
            batches: batches.clone(),
        };
        assert_eq!(
            frame.encode().unwrap().len(),
            update_replay_frame_bytes(&batches)
        );
    }

    #[test]
    fn borrowed_encoders_match_the_owned_frames_byte_for_byte() {
        let shares = sample_shares(3);
        assert_eq!(
            encode_query_batch(&shares).unwrap(),
            Frame::QueryBatch {
                shares: shares.clone()
            }
            .encode()
            .unwrap()
        );
        let updates = vec![(1u64, vec![2u8; 8]), (9, vec![3; 8])];
        assert_eq!(
            encode_update_batch(&updates).unwrap(),
            Frame::UpdateBatch {
                updates: updates.clone()
            }
            .encode()
            .unwrap()
        );
        let selector: SelectorVector = (0..129).map(|i| i % 3 == 0).collect();
        assert_eq!(
            encode_selector_scan(&selector).unwrap(),
            Frame::SelectorScan {
                selector: selector.clone()
            }
            .encode()
            .unwrap()
        );
    }

    #[test]
    fn truncated_frames_decode_to_clean_errors() {
        for frame in sample_frames() {
            let encoded = frame.encode().unwrap();
            for cut in 0..encoded.len() {
                assert!(
                    matches!(
                        Frame::decode(&encoded[..cut]),
                        Err(PirError::Protocol { .. })
                    ),
                    "{frame:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // Announces a ~4 GiB frame; decoding must fail fast, not allocate.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.push(TAG_GOODBYE);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(PirError::Protocol { .. })
        ));
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(PirError::Protocol { .. })
        ));
    }

    #[test]
    fn hostile_inner_length_prefixes_cannot_outgrow_the_frame() {
        // A query batch whose key-length prefix claims more bytes than the
        // frame holds: the reader must reject it instead of allocating.
        let mut w = Vec::new();
        w.extend_from_slice(&[0u8; 4]); // patched below
        w.push(TAG_QUERY_BATCH);
        w.extend_from_slice(&1u32.to_le_bytes()); // one share
        w.extend_from_slice(&9u64.to_le_bytes()); // query id
        w.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile key length
        let length = (w.len() - 4) as u32;
        w[..4].copy_from_slice(&length.to_le_bytes());
        assert!(matches!(Frame::decode(&w), Err(PirError::Protocol { .. })));
    }

    #[test]
    fn bad_magic_and_unknown_tags_are_rejected() {
        let mut hello = Frame::Hello {
            version: WIRE_VERSION,
        }
        .encode()
        .unwrap();
        hello[FRAME_HEADER_BYTES] ^= 0xFF; // corrupt the magic
        assert!(matches!(
            Frame::decode(&hello),
            Err(PirError::Protocol { .. })
        ));

        let mut goodbye = Frame::Goodbye.encode().unwrap();
        goodbye[4] = 200; // unknown tag
        assert!(matches!(
            Frame::decode(&goodbye),
            Err(PirError::Protocol { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut encoded = Frame::InfoRequest.encode().unwrap();
        // Grow the body (and fix the length prefix so framing stays valid):
        // the *body decoder* must notice the extra byte.
        encoded.push(0xAB);
        let length = (encoded.len() - 4) as u32;
        encoded[..4].copy_from_slice(&length.to_le_bytes());
        assert!(matches!(
            Frame::decode(&encoded),
            Err(PirError::Protocol { .. })
        ));
    }

    #[test]
    fn nested_mux_frames_are_rejected_on_both_sides() {
        // The encoder refuses to put a Mux inside a Mux on the wire …
        let nested = Frame::Mux {
            session: 2,
            frame: Box::new(Frame::Mux {
                session: 1,
                frame: Box::new(Frame::Goodbye),
            }),
        };
        assert!(matches!(nested.encode(), Err(PirError::Protocol { .. })));

        // … and the decoder rejects hand-built nested bytes a hostile
        // peer sends anyway (without recursing into the inner body).
        let inner = Frame::Mux {
            session: 1,
            frame: Box::new(Frame::Goodbye),
        }
        .encode()
        .unwrap();
        let mut outer = Vec::new();
        outer.extend_from_slice(&[0u8; 4]); // patched below
        outer.push(TAG_MUX);
        outer.extend_from_slice(&9u32.to_le_bytes()); // outer session id
        outer.extend_from_slice(&inner[4..]); // inner tag + body
        let length = (outer.len() - 4) as u32;
        outer[..4].copy_from_slice(&length.to_le_bytes());
        assert!(matches!(
            Frame::decode(&outer),
            Err(PirError::Protocol { .. })
        ));
    }

    #[test]
    fn mux_wrapping_is_transparent_to_the_inner_frame_bytes() {
        // A Mux body is exactly session id + the inner frame's tag and
        // body — the bytes a plain encoding of the inner frame carries
        // after its length prefix.
        let inner = Frame::UpdateReplayRequest { from_epoch: 41 };
        let plain = inner.encode().unwrap();
        let muxed = Frame::Mux {
            session: 7,
            frame: Box::new(inner),
        }
        .encode()
        .unwrap();
        assert_eq!(muxed.len(), plain.len() + MUX_OVERHEAD_BYTES);
        assert_eq!(&muxed[FRAME_HEADER_BYTES + 4..], &plain[4..]);
    }

    #[test]
    fn invalid_party_and_flag_bytes_are_rejected() {
        let frame = Frame::ResponseBatch {
            epoch: 0,
            wall_seconds: 0.0,
            phases: PhaseBreakdown::zero(),
            responses: vec![ServerResponse::new(0, PartyId::Server1, vec![1])],
        };
        let mut encoded = frame.encode().unwrap();
        // The party byte sits after the header, epoch, wall time, phases
        // and count (4) + query id (8).
        let offset = FRAME_HEADER_BYTES + 8 + 8 + PHASES_BYTES + 4 + 8;
        assert_eq!(encoded[offset], 0);
        encoded[offset] = 9;
        assert!(matches!(
            Frame::decode(&encoded),
            Err(PirError::Protocol { .. })
        ));

        // Phase presence flags other than 0/1 are rejected too.
        let mut encoded = frame.encode().unwrap();
        let flag_offset = FRAME_HEADER_BYTES + 8 + 8 + 8;
        assert_eq!(encoded[flag_offset], 0);
        encoded[flag_offset] = 2;
        assert!(matches!(
            Frame::decode(&encoded),
            Err(PirError::Protocol { .. })
        ));
    }
}
