//! The public PIR database.
//!
//! A PIR database is a flat table of `N` fixed-size records (the paper uses
//! 32-byte hashes). It is *public* data — privacy concerns only the query —
//! so both servers hold identical replicas and, in IM-PIR, preload their
//! replica into DPU MRAM once, ahead of query processing (§3.3).

use impir_dpf::SelectorVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dpxor;
use crate::error::PirError;

/// A PIR database: `num_records` records of `record_size` bytes each,
/// stored contiguously.
///
/// # Example
///
/// ```
/// use impir_core::database::Database;
///
/// let db = Database::random(1024, 32, 1)?;
/// assert_eq!(db.num_records(), 1024);
/// assert_eq!(db.record(17).len(), 32);
/// assert_eq!(db.size_bytes(), 1024 * 32);
/// # Ok::<(), impir_core::PirError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Database {
    record_size: usize,
    num_records: u64,
    data: Vec<u8>,
}

impl Database {
    /// Creates an all-zero database.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::InvalidDatabaseGeometry`] if either dimension is
    /// zero.
    pub fn zeroed(num_records: u64, record_size: usize) -> Result<Self, PirError> {
        if num_records == 0 || record_size == 0 {
            return Err(PirError::InvalidDatabaseGeometry {
                num_records,
                record_bytes: record_size,
            });
        }
        Ok(Database {
            record_size,
            num_records,
            data: vec![0; (num_records as usize) * record_size],
        })
    }

    /// Creates a database of pseudorandom records, deterministically derived
    /// from `seed` — the synthetic "random 32-byte hash" workload of §5.2.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::InvalidDatabaseGeometry`] if either dimension is
    /// zero.
    pub fn random(num_records: u64, record_size: usize, seed: u64) -> Result<Self, PirError> {
        let mut db = Database::zeroed(num_records, record_size)?;
        let mut rng = StdRng::seed_from_u64(seed);
        rng.fill(db.data.as_mut_slice());
        Ok(db)
    }

    /// Builds a database from explicit records (all must share one length).
    ///
    /// # Errors
    ///
    /// * [`PirError::InvalidDatabaseGeometry`] if `records` is empty;
    /// * [`PirError::RecordSizeMismatch`] if any record's length differs
    ///   from the first one's.
    pub fn from_records<R: AsRef<[u8]>>(records: &[R]) -> Result<Self, PirError> {
        let first = records.first().ok_or(PirError::InvalidDatabaseGeometry {
            num_records: 0,
            record_bytes: 0,
        })?;
        let record_size = first.as_ref().len();
        if record_size == 0 {
            return Err(PirError::InvalidDatabaseGeometry {
                num_records: records.len() as u64,
                record_bytes: 0,
            });
        }
        let mut data = Vec::with_capacity(records.len() * record_size);
        for record in records {
            let bytes = record.as_ref();
            if bytes.len() != record_size {
                return Err(PirError::RecordSizeMismatch {
                    expected: record_size,
                    actual: bytes.len(),
                });
            }
            data.extend_from_slice(bytes);
        }
        Ok(Database {
            record_size,
            num_records: records.len() as u64,
            data,
        })
    }

    /// Number of records.
    #[must_use]
    pub fn num_records(&self) -> u64 {
        self.num_records
    }

    /// Size of one record in bytes.
    #[must_use]
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Total database size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.num_records * self.record_size as u64
    }

    /// Number of domain bits a DPF key must cover to address every record
    /// (`⌈log2(num_records)⌉`, at least 1).
    #[must_use]
    pub fn domain_bits(&self) -> u32 {
        domain_bits_for_records(self.num_records)
    }

    /// The record at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_records()`; use [`Database::try_record`] for
    /// a fallible accessor.
    #[must_use]
    pub fn record(&self, index: u64) -> &[u8] {
        self.try_record(index).expect("record index in range")
    }

    /// The record at `index`, or an error for out-of-range indices.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::IndexOutOfRange`] if `index >= num_records()`.
    pub fn try_record(&self, index: u64) -> Result<&[u8], PirError> {
        if index >= self.num_records {
            return Err(PirError::IndexOutOfRange {
                index,
                num_records: self.num_records,
            });
        }
        let start = index as usize * self.record_size;
        Ok(&self.data[start..start + self.record_size])
    }

    /// The raw contiguous byte buffer backing the database.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// The bytes of records `[start, start + count)` — the chunk copied to
    /// one DPU during preloading (§3.3: `B_d = ⌈N / P⌉` records per DPU).
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the database.
    #[must_use]
    pub fn record_chunk(&self, start: u64, count: u64) -> &[u8] {
        assert!(
            start + count <= self.num_records,
            "chunk [{start}, {}) exceeds {} records",
            start + count,
            self.num_records
        );
        let begin = start as usize * self.record_size;
        let end = begin + count as usize * self.record_size;
        &self.data[begin..end]
    }

    /// A new database holding only records `[start, start + count)` — the
    /// materialised replica one shard of a
    /// [`crate::shard::ShardedDatabase`] hands to its backend.
    ///
    /// # Errors
    ///
    /// * [`PirError::InvalidDatabaseGeometry`] if `count` is zero;
    /// * [`PirError::IndexOutOfRange`] if the range extends past the end of
    ///   the database.
    pub fn subrange(&self, start: u64, count: u64) -> Result<Database, PirError> {
        if count == 0 {
            return Err(PirError::InvalidDatabaseGeometry {
                num_records: 0,
                record_bytes: self.record_size,
            });
        }
        let end = start.checked_add(count).ok_or(PirError::IndexOutOfRange {
            index: u64::MAX,
            num_records: self.num_records,
        })?;
        if end > self.num_records {
            return Err(PirError::IndexOutOfRange {
                index: end - 1,
                num_records: self.num_records,
            });
        }
        Ok(Database {
            record_size: self.record_size,
            num_records: count,
            data: self.record_chunk(start, count).to_vec(),
        })
    }

    /// Overwrites the record at `index` with `bytes`.
    ///
    /// This is the primitive the §3.3 update workflows build on. Callers
    /// serving queries should not drive it directly: backends keep their
    /// own replicas in sync through
    /// [`crate::batch::UpdatableBackend::apply_updates`], and sharded
    /// deployments update consistently through
    /// [`crate::engine::QueryEngine::apply_updates`] — no caller-side
    /// oracle copy is needed.
    ///
    /// # Errors
    ///
    /// * [`PirError::IndexOutOfRange`] if `index` is not a valid record;
    /// * [`PirError::RecordSizeMismatch`] if `bytes` has the wrong length.
    pub fn set_record(&mut self, index: u64, bytes: &[u8]) -> Result<(), PirError> {
        if index >= self.num_records {
            return Err(PirError::IndexOutOfRange {
                index,
                num_records: self.num_records,
            });
        }
        if bytes.len() != self.record_size {
            return Err(PirError::RecordSizeMismatch {
                expected: self.record_size,
                actual: bytes.len(),
            });
        }
        let start = index as usize * self.record_size;
        self.data[start..start + self.record_size].copy_from_slice(bytes);
        Ok(())
    }

    /// The `dpXOR` scan: XORs every record whose selector bit is set.
    ///
    /// This is the linear scan every PIR server must perform (the
    /// *all-for-one* principle). It runs through the runtime-dispatched
    /// [`crate::dpxor::ScanKernel`] ([`crate::dpxor::best_kernel`]), so it
    /// inherits the fastest registered kernel for this host; every kernel
    /// is pinned byte-identical to the scalar oracle.
    ///
    /// # Panics
    ///
    /// Panics if the selector length differs from the number of records.
    #[must_use]
    pub fn xor_select(&self, selector: &SelectorVector) -> Vec<u8> {
        let mut acc_words = Vec::new();
        self.xor_select_with(selector, &mut acc_words)
    }

    /// [`Database::xor_select`] with a caller-owned word scratch, so scan
    /// loops (one scan per query of a batch) reuse the accumulator words
    /// instead of allocating them per call.
    ///
    /// # Panics
    ///
    /// Panics if the selector length differs from the number of records.
    #[must_use]
    pub fn xor_select_with(&self, selector: &SelectorVector, acc_words: &mut Vec<u64>) -> Vec<u8> {
        assert_eq!(
            selector.len() as u64,
            self.num_records,
            "selector length must equal the number of records"
        );
        let mut accumulator = vec![0u8; self.record_size];
        dpxor::xor_select_into_with(
            &self.data,
            self.record_size,
            selector,
            &mut accumulator,
            acc_words,
        );
        accumulator
    }
}

/// `⌈log2(num_records)⌉`, at least 1 — the single definition of the DPF
/// domain for a record count, shared by [`Database::domain_bits`], the
/// client and the engine so their domain checks can never drift apart.
pub(crate) fn domain_bits_for_records(num_records: u64) -> u32 {
    let bits = 64 - (num_records.max(1) - 1).leading_zeros();
    bits.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_accessors() {
        let db = Database::random(100, 16, 3).unwrap();
        assert_eq!(db.num_records(), 100);
        assert_eq!(db.record_size(), 16);
        assert_eq!(db.size_bytes(), 1600);
        assert_eq!(db.domain_bits(), 7);
        assert_eq!(db.as_bytes().len(), 1600);
    }

    #[test]
    fn domain_bits_handles_powers_of_two_and_one_record() {
        assert_eq!(Database::zeroed(1, 8).unwrap().domain_bits(), 1);
        assert_eq!(Database::zeroed(2, 8).unwrap().domain_bits(), 1);
        assert_eq!(Database::zeroed(3, 8).unwrap().domain_bits(), 2);
        assert_eq!(Database::zeroed(256, 8).unwrap().domain_bits(), 8);
        assert_eq!(Database::zeroed(257, 8).unwrap().domain_bits(), 9);
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        assert!(Database::zeroed(0, 8).is_err());
        assert!(Database::zeroed(8, 0).is_err());
        assert!(Database::random(0, 8, 1).is_err());
        let empty: &[Vec<u8>] = &[];
        assert!(Database::from_records(empty).is_err());
    }

    #[test]
    fn from_records_roundtrips() {
        let records: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 4]).collect();
        let db = Database::from_records(&records).unwrap();
        for (i, record) in records.iter().enumerate() {
            assert_eq!(db.record(i as u64), record.as_slice());
        }
    }

    #[test]
    fn mismatched_record_sizes_are_rejected() {
        let records = vec![vec![1u8; 4], vec![2u8; 5]];
        assert!(matches!(
            Database::from_records(&records),
            Err(PirError::RecordSizeMismatch {
                expected: 4,
                actual: 5
            })
        ));
    }

    #[test]
    fn try_record_bounds_check() {
        let db = Database::random(10, 8, 0).unwrap();
        assert!(db.try_record(9).is_ok());
        assert!(db.try_record(10).is_err());
    }

    #[test]
    fn random_databases_are_deterministic_per_seed() {
        let a = Database::random(64, 32, 42).unwrap();
        let b = Database::random(64, 32, 42).unwrap();
        let c = Database::random(64, 32, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn xor_select_matches_manual_xor() {
        let db = Database::random(50, 8, 9).unwrap();
        let selector: SelectorVector = (0..50).map(|i| i % 3 == 0).collect();
        let mut expected = vec![0u8; 8];
        for i in 0..50u64 {
            if i % 3 == 0 {
                for (acc, byte) in expected.iter_mut().zip(db.record(i)) {
                    *acc ^= *byte;
                }
            }
        }
        assert_eq!(db.xor_select(&selector), expected);
    }

    #[test]
    fn set_record_overwrites_and_validates() {
        let mut db = Database::random(10, 4, 0).unwrap();
        db.set_record(3, &[9, 9, 9, 9]).unwrap();
        assert_eq!(db.record(3), &[9, 9, 9, 9]);
        assert!(matches!(
            db.set_record(10, &[0; 4]),
            Err(PirError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            db.set_record(0, &[0; 3]),
            Err(PirError::RecordSizeMismatch { .. })
        ));
    }

    #[test]
    fn record_chunk_is_contiguous_records() {
        let db = Database::random(20, 4, 5).unwrap();
        let chunk = db.record_chunk(5, 3);
        assert_eq!(chunk.len(), 12);
        assert_eq!(&chunk[0..4], db.record(5));
        assert_eq!(&chunk[8..12], db.record(7));
    }
}
