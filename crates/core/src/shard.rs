//! Record-range sharding of the PIR database.
//!
//! The production-scale deployments the roadmap targets hold databases that
//! no single backend instance should own outright: a PIM server is bounded
//! by aggregate MRAM, a CPU server by memory bandwidth. A [`ShardPlan`]
//! splits the record space `[0, N)` into contiguous ranges; a
//! [`ShardedDatabase`] pairs a plan with a concrete [`Database`] and
//! materialises the per-shard replicas that
//! [`crate::engine::QueryEngine`] hands to its backends.
//!
//! Because the PIR answer is a XOR over selected records, sharding is
//! *linear*: the XOR of every shard's sub-answer equals the answer a single
//! server would compute over the whole database. The engine relies on this
//! to keep responses byte-identical across shard layouts (the equivalence
//! tests pin that property down).

use std::ops::Range;
use std::sync::Arc;

use crate::database::Database;
use crate::error::PirError;

/// A partition of the record space `[0, N)` into contiguous, non-empty
/// shard ranges.
///
/// # Example
///
/// ```
/// use impir_core::shard::ShardPlan;
///
/// let plan = ShardPlan::uniform(10, 3)?;
/// assert_eq!(plan.shard_count(), 3);
/// // 10 records over 3 shards: 4 + 3 + 3.
/// assert_eq!(plan.range(0), Some(0..4));
/// assert_eq!(plan.range(2), Some(7..10));
/// # Ok::<(), impir_core::PirError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    ranges: Vec<Range<u64>>,
}

impl ShardPlan {
    /// Splits `num_records` records into `shards` contiguous ranges whose
    /// sizes differ by at most one record.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] if `shards` is zero, `num_records` is
    /// zero, or more shards than records are requested (an empty shard
    /// could never answer its slice of a query).
    pub fn uniform(num_records: u64, shards: usize) -> Result<Self, PirError> {
        if shards == 0 {
            return Err(PirError::Config {
                reason: "a shard plan needs at least one shard".to_string(),
            });
        }
        if num_records == 0 {
            return Err(PirError::Config {
                reason: "cannot shard an empty database".to_string(),
            });
        }
        if shards as u64 > num_records {
            return Err(PirError::Config {
                reason: format!(
                    "{shards} shards requested for only {num_records} records \
                     (every shard must hold at least one record)"
                ),
            });
        }
        let base = num_records / shards as u64;
        let remainder = num_records % shards as u64;
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0u64;
        for shard in 0..shards as u64 {
            let len = base + u64::from(shard < remainder);
            ranges.push(start..start + len);
            start += len;
        }
        Ok(ShardPlan { ranges })
    }

    /// The trivial plan: one shard covering every record.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] if `num_records` is zero.
    pub fn single(num_records: u64) -> Result<Self, PirError> {
        ShardPlan::uniform(num_records, 1)
    }

    /// Builds a plan from explicit ranges.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] unless the ranges are non-empty, start
    /// at record 0 and tile the record space contiguously.
    pub fn from_ranges(ranges: Vec<Range<u64>>) -> Result<Self, PirError> {
        if ranges.is_empty() {
            return Err(PirError::Config {
                reason: "a shard plan needs at least one shard".to_string(),
            });
        }
        let mut expected_start = 0u64;
        for (shard, range) in ranges.iter().enumerate() {
            if range.start != expected_start {
                return Err(PirError::Config {
                    reason: format!(
                        "shard {shard} starts at record {} but the previous shard \
                         ends at {expected_start}: shards must tile [0, N) contiguously",
                        range.start
                    ),
                });
            }
            if range.end <= range.start {
                return Err(PirError::Config {
                    reason: format!("shard {shard} is empty ({range:?})"),
                });
            }
            expected_start = range.end;
        }
        Ok(ShardPlan { ranges })
    }

    /// Number of shards in the plan.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of records the plan covers.
    #[must_use]
    pub fn num_records(&self) -> u64 {
        self.ranges.last().map_or(0, |range| range.end)
    }

    /// The record range of shard `shard`, if it exists.
    #[must_use]
    pub fn range(&self, shard: usize) -> Option<Range<u64>> {
        self.ranges.get(shard).cloned()
    }

    /// The shard whose range contains `record`, or `None` if the record is
    /// outside the plan — the global→shard translation the engine uses to
    /// route queries' record indices (e.g. bulk updates) to the right
    /// backend.
    ///
    /// ```
    /// use impir_core::shard::ShardPlan;
    ///
    /// let plan = ShardPlan::uniform(10, 3)?; // ranges 0..4, 4..7, 7..10
    /// assert_eq!(plan.shard_of(0), Some(0));
    /// assert_eq!(plan.shard_of(4), Some(1));
    /// assert_eq!(plan.shard_of(9), Some(2));
    /// assert_eq!(plan.shard_of(10), None);
    /// # Ok::<(), impir_core::PirError>(())
    /// ```
    #[must_use]
    pub fn shard_of(&self, record: u64) -> Option<usize> {
        if record >= self.num_records() {
            return None;
        }
        // Ranges tile [0, N) in order, so the first range ending past the
        // record is the one containing it.
        let shard = self.ranges.partition_point(|range| range.end <= record);
        debug_assert!(self.ranges[shard].contains(&record));
        Some(shard)
    }

    /// All shard ranges, in record order.
    #[must_use]
    pub fn ranges(&self) -> &[Range<u64>] {
        &self.ranges
    }

    /// The shard sizes joined as `"n0+n1+…"` — the compact layout label
    /// every banner and report uses (e.g. `"2048+2048+2048"` for a uniform
    /// three-way split).
    #[must_use]
    pub fn size_summary(&self) -> String {
        self.ranges
            .iter()
            .map(|range| (range.end - range.start).to_string())
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// Test-only helpers shared across the crate's unit tests.
#[cfg(test)]
pub(crate) mod test_util {
    use std::ops::Range;

    /// Derives a deterministic skewed layout from a seed: `shards` ranges
    /// whose sizes are `min_size..min_size + span`, tiling `[0, N)`.
    pub(crate) fn skewed_ranges(
        seed: u64,
        shards: usize,
        min_size: u64,
        span: u64,
    ) -> Vec<Range<u64>> {
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64: cheap, deterministic, well spread.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0u64;
        for _ in 0..shards {
            let len = min_size + next() % span.max(1);
            ranges.push(start..start + len);
            start += len;
        }
        ranges
    }
}

/// A [`Database`] paired with the [`ShardPlan`] that partitions it.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use impir_core::database::Database;
/// use impir_core::shard::ShardedDatabase;
///
/// let db = Arc::new(Database::random(100, 16, 1)?);
/// let sharded = ShardedDatabase::uniform(db.clone(), 4)?;
/// let shard_0 = sharded.shard_database(0)?;
/// assert_eq!(shard_0.num_records(), 25);
/// assert_eq!(shard_0.record(3), db.record(3));
/// # Ok::<(), impir_core::PirError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedDatabase {
    database: Arc<Database>,
    plan: ShardPlan,
}

impl ShardedDatabase {
    /// Pairs `database` with `plan`.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] if the plan does not cover the database
    /// exactly.
    pub fn new(database: Arc<Database>, plan: ShardPlan) -> Result<Self, PirError> {
        if plan.num_records() != database.num_records() {
            return Err(PirError::Config {
                reason: format!(
                    "shard plan covers {} records but the database holds {}",
                    plan.num_records(),
                    database.num_records()
                ),
            });
        }
        Ok(ShardedDatabase { database, plan })
    }

    /// Pairs `database` with a uniform plan of `shards` shards.
    ///
    /// # Errors
    ///
    /// See [`ShardPlan::uniform`].
    pub fn uniform(database: Arc<Database>, shards: usize) -> Result<Self, PirError> {
        let plan = ShardPlan::uniform(database.num_records(), shards)?;
        ShardedDatabase::new(database, plan)
    }

    /// The underlying full database.
    #[must_use]
    pub fn database(&self) -> &Arc<Database> {
        &self.database
    }

    /// The partition in use.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Materialises shard `shard`'s records as a standalone [`Database`]
    /// (the replica handed to that shard's backend).
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] for an out-of-range shard index.
    pub fn shard_database(&self, shard: usize) -> Result<Arc<Database>, PirError> {
        let range = self.plan.range(shard).ok_or_else(|| PirError::Config {
            reason: format!(
                "shard {shard} out of range: the plan has {} shards",
                self.plan.shard_count()
            ),
        })?;
        Ok(Arc::new(
            self.database
                .subrange(range.start, range.end - range.start)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_plans_tile_the_record_space() {
        for (records, shards) in [(10u64, 3usize), (9, 4), (8, 8), (1000, 7), (5, 1)] {
            let plan = ShardPlan::uniform(records, shards).unwrap();
            assert_eq!(plan.shard_count(), shards);
            assert_eq!(plan.num_records(), records);
            let mut expected_start = 0;
            for range in plan.ranges() {
                assert_eq!(range.start, expected_start);
                assert!(range.end > range.start);
                expected_start = range.end;
            }
            assert_eq!(expected_start, records);
            // Balanced: sizes differ by at most one record.
            let sizes: Vec<u64> = plan.ranges().iter().map(|r| r.end - r.start).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "records={records} shards={shards}");
        }
    }

    #[test]
    fn degenerate_plans_are_rejected_as_config_errors() {
        assert!(matches!(
            ShardPlan::uniform(100, 0),
            Err(PirError::Config { .. })
        ));
        assert!(matches!(
            ShardPlan::uniform(0, 2),
            Err(PirError::Config { .. })
        ));
        assert!(matches!(
            ShardPlan::uniform(3, 4),
            Err(PirError::Config { .. })
        ));
        assert!(matches!(
            ShardPlan::from_ranges(vec![]),
            Err(PirError::Config { .. })
        ));
    }

    #[test]
    fn explicit_ranges_must_be_contiguous_and_non_empty() {
        assert!(ShardPlan::from_ranges(vec![0..4, 4..10]).is_ok());
        // A single range that does not start at record 0.
        let offset_plan: Vec<std::ops::Range<u64>> = std::iter::once(1..4).collect();
        assert!(ShardPlan::from_ranges(offset_plan).is_err());
        assert!(ShardPlan::from_ranges(vec![0..4, 5..10]).is_err());
        assert!(ShardPlan::from_ranges(vec![0..4, 4..4]).is_err());
        assert!(ShardPlan::from_ranges(vec![0..4, 3..10]).is_err());
    }

    #[test]
    fn shard_of_agrees_with_the_ranges() {
        for (records, shards) in [(10u64, 3usize), (9, 4), (8, 8), (1000, 7), (5, 1)] {
            let plan = ShardPlan::uniform(records, shards).unwrap();
            for record in 0..records {
                let shard = plan.shard_of(record).unwrap();
                assert!(
                    plan.range(shard).unwrap().contains(&record),
                    "records={records} shards={shards} record={record}"
                );
            }
            assert_eq!(plan.shard_of(records), None);
            assert_eq!(plan.shard_of(u64::MAX), None);
        }
        // Skewed explicit layout.
        let plan = ShardPlan::from_ranges(vec![0..300, 300..400, 400..421]).unwrap();
        assert_eq!(plan.shard_of(0), Some(0));
        assert_eq!(plan.shard_of(299), Some(0));
        assert_eq!(plan.shard_of(300), Some(1));
        assert_eq!(plan.shard_of(420), Some(2));
        assert_eq!(plan.shard_of(421), None);
    }

    #[test]
    fn sharded_database_materialises_matching_replicas() {
        let db = Arc::new(Database::random(23, 8, 5).unwrap());
        let sharded = ShardedDatabase::uniform(db.clone(), 4).unwrap();
        let mut reassembled = Vec::new();
        for shard in 0..4 {
            let replica = sharded.shard_database(shard).unwrap();
            let range = sharded.plan().range(shard).unwrap();
            assert_eq!(replica.num_records(), range.end - range.start);
            for (local, global) in (range.start..range.end).enumerate() {
                assert_eq!(replica.record(local as u64), db.record(global));
            }
            reassembled.extend_from_slice(replica.as_bytes());
        }
        assert_eq!(reassembled, db.as_bytes());
        assert!(sharded.shard_database(4).is_err());
    }

    #[test]
    fn plan_mismatching_the_database_is_rejected() {
        let db = Arc::new(Database::random(10, 8, 0).unwrap());
        let plan = ShardPlan::uniform(12, 2).unwrap();
        assert!(matches!(
            ShardedDatabase::new(db, plan),
            Err(PirError::Config { .. })
        ));
    }

    #[test]
    fn subrange_bounds_are_checked() {
        let db = Database::random(10, 4, 1).unwrap();
        assert!(db.subrange(0, 10).is_ok());
        assert!(db.subrange(5, 6).is_err());
        assert!(db.subrange(0, 0).is_err());
    }

    use super::test_util::skewed_ranges;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `from_ranges` ⇄ `shard_of`/`range` round-trip on skewed layouts:
        /// the plan reproduces its input ranges exactly, and every record of
        /// every shard routes back to that shard.
        #[test]
        fn prop_from_ranges_round_trips_with_shard_of(
            seed in any::<u64>(),
            shards in 1usize..10,
        ) {
            let ranges = skewed_ranges(seed, shards, 1, 64);
            let plan = ShardPlan::from_ranges(ranges.clone()).unwrap();
            prop_assert_eq!(plan.shard_count(), shards);
            prop_assert_eq!(plan.ranges(), &ranges[..]);
            prop_assert_eq!(plan.num_records(), ranges.last().unwrap().end);
            for (shard, range) in ranges.iter().enumerate() {
                prop_assert_eq!(plan.range(shard), Some(range.clone()));
                let middle = range.start + (range.end - range.start) / 2;
                for record in [range.start, middle, range.end - 1] {
                    prop_assert_eq!(plan.shard_of(record), Some(shard));
                }
            }
            prop_assert_eq!(plan.range(shards), None);
            prop_assert_eq!(plan.shard_of(plan.num_records()), None);
            prop_assert_eq!(plan.shard_of(u64::MAX), None);
        }

        /// Any gap, overlap or empty shard in an otherwise valid skewed
        /// layout is rejected as a config error.
        #[test]
        fn prop_gapped_overlapping_or_empty_layouts_are_rejected(
            seed in any::<u64>(),
            shards in 2usize..10,
            shift in 1u64..5,
        ) {
            // Sizes ≥ 6 so every corruption below keeps start < end.
            let ranges = skewed_ranges(seed, shards, 6, 64);
            prop_assert!(ShardPlan::from_ranges(ranges.clone()).is_ok());
            let victim = 1 + (seed as usize) % (shards - 1);
            for corruption in 0..3 {
                let mut corrupted = ranges.clone();
                match corruption {
                    // A gap between the victim and its predecessor.
                    0 => corrupted[victim].start += shift,
                    // The victim overlaps its predecessor.
                    1 => corrupted[victim].start -= shift,
                    // The victim becomes empty.
                    _ => corrupted[victim].end = corrupted[victim].start,
                }
                prop_assert!(
                    matches!(
                        ShardPlan::from_ranges(corrupted),
                        Err(PirError::Config { .. })
                    ),
                    "corruption {} on shard {} was accepted",
                    corruption,
                    victim
                );
            }
        }
    }
}
