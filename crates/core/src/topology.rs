//! Declarative fleet topology: *what a deployment looks like*, as data.
//!
//! A [`FleetTopology`] names every replica of an IM-PIR fleet — where it
//! listens, which backend serves it (CPU or simulated PIM, with its DPU
//! geometry), how its engine is sharded, how deep its update journal is,
//! and which retry/timeout policy clients use to reach it — plus an
//! optional front-tier router section. The same value drives **every**
//! construction path in the workspace:
//!
//! * servers: `impir-server --config fleet.toml` (and the flag form, which
//!   desugars into the same `FleetTopology`) builds its engine through
//!   [`FleetTopology::build_engine`];
//! * clients: [`crate::scheme::TwoServerPir::from_topology`] and
//!   [`crate::multi_server::NServerNaivePir::from_topology`] connect the
//!   right [`LocalTransport`]/[`TcpTransport`] per replica, with the
//!   topology's [`RetryPolicy`];
//! * the router: `impir-server --config fleet.toml --router` spreads
//!   client sessions over the topology's replicas.
//!
//! Per the middleware design the paper builds on, the schemes never know
//! *where* a replica runs — the topology is the single artifact where
//! that policy is decided, so application logic stays separate from
//! distribution policy.
//!
//! # File format
//!
//! Line-oriented and hand-parsed (no external dependencies): `#` starts a
//! comment, `[section]` opens a section, `key = value` sets a key. Three
//! section kinds exist — one `[fleet]`, one `[replica NAME]` per replica,
//! and at most one `[router]`. Hostile input never panics: every decode
//! problem is a [`PirError::Config`] naming the offending line.
//!
//! ```text
//! # Two CPU replicas on loopback TCP.
//! [fleet]
//! records = 2048
//! record-bytes = 32
//! seed = 7
//!
//! [replica left]
//! listen = 127.0.0.1:7700
//! shards = 2
//!
//! [replica right]
//! listen = 127.0.0.1:7701
//! shards = 3
//! ```
//!
//! [`FleetTopology::to_config_string`] serializes a topology back into
//! this format such that parse ∘ serialize ∘ parse is the identity.

use std::sync::Arc;
use std::time::Duration;

use crate::batch::{BatchConfig, UpdatableBackend};
use crate::capacity::{measure_scan_bandwidth, CapacityProfile, ShardPlanner};
use crate::database::Database;
use crate::dpxor::KernelChoice;
use crate::engine::{EngineConfig, QueryEngine, DEFAULT_JOURNAL_BATCHES};
use crate::error::PirError;
use crate::server::cpu::{CpuPirServer, CpuServerConfig};
use crate::server::pim::{ImPirConfig, ImPirServer};
use crate::shard::ShardedDatabase;
use crate::transport::{LocalTransport, PirTransport, RetryPolicy, TcpTransport};
use impir_pim::PimConfig;

/// A backend chosen by the topology, type-erased so one engine type serves
/// heterogeneous fleets (CPU and PIM replicas side by side).
pub type BoxedBackend = Box<dyn UpdatableBackend + Send + Sync>;

/// The engine every topology-built replica runs:
/// [`QueryEngine`] over a [`BoxedBackend`] per shard.
pub type FleetEngine = QueryEngine<BoxedBackend>;

/// A per-shard backend constructor for a topology-built replica — the
/// closure shape [`QueryEngine::sharded`] and [`QueryEngine::rebalance`]
/// take, boxed so the service layer can retain it and rebuild shards live
/// when a rebalance triggers.
pub type BackendFactory =
    Box<dyn FnMut(Arc<Database>, usize) -> Result<BoxedBackend, PirError> + Send>;

/// Records in the probe replica `autoshard = calibrated` measures against.
pub const PROBE_RECORDS: u64 = 2048;
/// How many probe scans calibration runs (the best one counts).
pub const PROBE_SCANS: usize = 2;
/// Weight of the measured bandwidth when blending into the declared one.
pub const CALIBRATION_BLEND: f64 = 0.5;
/// Per-DPU MRAM bytes of topology-built PIM replicas (the simulator's
/// tiny-test geometry, scaled for CI-sized databases).
pub const PIM_MRAM_BYTES: usize = 32 << 20;

/// Whether a serving replica closes the measured-skew feedback loop by
/// migrating records between shards live (`[fleet] rebalance = auto|off`,
/// or `impir-server --rebalance auto|off`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RebalanceMode {
    /// Never rebalance; the construction-time layout is permanent.
    #[default]
    Off,
    /// After a query wave, when the measured scan skew exceeds the
    /// trigger threshold, plan and execute a bounded migration between
    /// waves (see [`crate::rebalance::RebalancePlanner`]).
    Auto,
}

impl std::fmt::Display for RebalanceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RebalanceMode::Off => "off",
            RebalanceMode::Auto => "auto",
        })
    }
}

impl RebalanceMode {
    /// Parses `auto` or `off` (the CLI and topology-file spelling).
    #[must_use]
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "off" => Some(RebalanceMode::Off),
            "auto" => Some(RebalanceMode::Auto),
            _ => None,
        }
    }
}

/// Which session tier a serving replica runs its client connections on
/// (`[fleet] session-tier = threads|events`, or `impir-server
/// --session-tier threads|events`). Responses are byte-identical across
/// tiers; the choice only decides how many OS threads the session layer
/// costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SessionTier {
    /// One OS thread per TCP connection (the original tier): simple
    /// blocking I/O, but the thread count grows with the session count.
    #[default]
    Threads,
    /// A single event-loop thread drives every connection with
    /// non-blocking readiness polling; the thread count stays constant no
    /// matter how many sessions connect.
    Events,
}

impl std::fmt::Display for SessionTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SessionTier::Threads => "threads",
            SessionTier::Events => "events",
        })
    }
}

impl SessionTier {
    /// Parses `threads` or `events` (the CLI and topology-file spelling).
    #[must_use]
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "threads" => Some(SessionTier::Threads),
            "events" => Some(SessionTier::Events),
            _ => None,
        }
    }
}

/// How the engine's shard layout is chosen for a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Manual uniform split into this many shards (`shards = K`).
    Uniform(usize),
    /// Capacity-aware planning from the backend's declared profile
    /// (`autoshard = declared`).
    Declared,
    /// Declared profile blended with measured probe scans
    /// (`autoshard = calibrated`).
    Calibrated,
}

/// Client-side retry/timeout policy, in file-friendly integer fields.
///
/// `policy()` converts into the transport layer's [`RetryPolicy`]; a
/// `io_timeout_ms` of 0 means "no per-attempt I/O timeout" (the
/// [`RetryPolicy`] default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrySpec {
    /// Total attempts an idempotent operation gets (at least 1; 1 = no
    /// retries).
    pub attempts: u32,
    /// Wait before the first retry, in milliseconds; doubles per retry.
    pub backoff_ms: u64,
    /// Upper bound on the exponential backoff, in milliseconds.
    pub max_backoff_ms: u64,
    /// Per-attempt bound on any single socket read or write, in
    /// milliseconds; 0 waits indefinitely.
    pub io_timeout_ms: u64,
}

impl Default for RetrySpec {
    fn default() -> Self {
        let policy = RetryPolicy::default();
        RetrySpec {
            attempts: policy.max_attempts,
            backoff_ms: policy.initial_backoff.as_millis() as u64,
            max_backoff_ms: policy.max_backoff.as_millis() as u64,
            io_timeout_ms: 0,
        }
    }
}

impl RetrySpec {
    /// The transport-layer [`RetryPolicy`] this spec describes.
    #[must_use]
    pub fn policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: self.attempts,
            initial_backoff: Duration::from_millis(self.backoff_ms),
            max_backoff: Duration::from_millis(self.max_backoff_ms),
            io_timeout: (self.io_timeout_ms > 0).then(|| Duration::from_millis(self.io_timeout_ms)),
        }
    }
}

/// How clients reach a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process: [`FleetTopology::connect`] builds the replica's engine
    /// locally and wraps it in a [`LocalTransport`].
    Local,
    /// Over the wire: clients dial the replica's `listen` address with a
    /// [`TcpTransport`].
    Tcp,
}

/// Which backend a replica runs, with its geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSpec {
    /// Host-CPU scan backend.
    Cpu,
    /// Simulated UPMEM PIM backend.
    Pim {
        /// Simulated DPUs per cluster.
        dpus: usize,
        /// DPU clusters (the backend's wave width).
        clusters: usize,
    },
}

/// One replica of the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSpec {
    /// Unique name (`[replica NAME]`): letters, digits, `.`/`_`/`-`.
    pub name: String,
    /// How clients reach this replica.
    pub transport: TransportKind,
    /// Listen address for TCP replicas (`host:port`; port 0 binds an
    /// ephemeral port, which clients then discover out of band).
    pub listen: Option<String>,
    /// Which backend serves this replica.
    pub backend: BackendSpec,
    /// Per-replica shard policy; `None` inherits the fleet's.
    pub sharding: Option<ShardPolicy>,
    /// Per-replica `dpXOR` kernel choice (CPU backends only); `None`
    /// inherits the fleet's.
    pub scan_kernel: Option<KernelChoice>,
}

impl ReplicaSpec {
    /// A local (in-process) CPU replica with fleet-inherited policy.
    #[must_use]
    pub fn local(name: impl Into<String>) -> Self {
        ReplicaSpec {
            name: name.into(),
            transport: TransportKind::Local,
            listen: None,
            backend: BackendSpec::Cpu,
            sharding: None,
            scan_kernel: None,
        }
    }

    /// A TCP CPU replica listening on `listen`, with fleet-inherited
    /// policy.
    #[must_use]
    pub fn tcp(name: impl Into<String>, listen: impl Into<String>) -> Self {
        ReplicaSpec {
            name: name.into(),
            transport: TransportKind::Tcp,
            listen: Some(listen.into()),
            backend: BackendSpec::Cpu,
            sharding: None,
            scan_kernel: None,
        }
    }
}

/// The optional front-tier router (`[router]` section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterSpec {
    /// Address the router listens on for client sessions.
    pub listen: String,
    /// How often the router probes replica health/lag via
    /// [`crate::wire::Frame::EpochInfoRequest`], in milliseconds.
    pub probe_interval_ms: u64,
    /// Largest epoch lag the router tolerates before it catches the
    /// replica up from an ahead peer's journal.
    pub max_lag_epochs: u64,
}

/// Default router probe interval, in milliseconds.
pub const DEFAULT_PROBE_INTERVAL_MS: u64 = 200;

/// A typed, validated description of an IM-PIR fleet — see the
/// [module docs](crate::topology) for the file format and the
/// construction paths it drives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetTopology {
    /// Database records (every replica holds the same synthetic replica).
    pub records: u64,
    /// Record size in bytes.
    pub record_bytes: usize,
    /// Database seed; replicas must match or clients fail the geometry
    /// check.
    pub seed: u64,
    /// Fleet-wide shard policy (replicas may override).
    pub sharding: ShardPolicy,
    /// Update-journal retention, in applied batches (0 disables the
    /// journal — a diverged replica then needs a re-seed).
    pub journal_batches: usize,
    /// Fleet-wide `dpXOR` kernel choice for CPU replicas (replicas may
    /// override).
    pub scan_kernel: KernelChoice,
    /// Whether serving replicas rebalance their shard layout live from
    /// measured skew.
    pub rebalance: RebalanceMode,
    /// Per-session socket read/write timeout of the *server* side, in
    /// milliseconds (must be at least 1).
    pub io_timeout_ms: u64,
    /// Which session tier serving replicas run (`threads` or `events`).
    pub session_tier: SessionTier,
    /// Optional budget of **logical** sessions a serving replica accepts
    /// before it stops accepting (`None` = unlimited). Under
    /// multiplexing every session id counts, not every TCP connection —
    /// see `ServiceConfig::max_sessions` in `impir-server`. Must be at
    /// least 1 when set; write no key at all for "unlimited".
    pub max_sessions: Option<usize>,
    /// Client-side retry/timeout policy for reaching TCP replicas.
    pub retry: RetrySpec,
    /// The fleet's replicas, in declaration order.
    pub replicas: Vec<ReplicaSpec>,
    /// The optional front-tier router.
    pub router: Option<RouterSpec>,
}

impl FleetTopology {
    /// A topology skeleton with library defaults and no replicas; push
    /// [`ReplicaSpec`]s before building anything from it.
    #[must_use]
    pub fn new(records: u64, record_bytes: usize, seed: u64) -> Self {
        FleetTopology {
            records,
            record_bytes,
            seed,
            sharding: ShardPolicy::Uniform(1),
            journal_batches: DEFAULT_JOURNAL_BATCHES,
            scan_kernel: KernelChoice::Auto,
            rebalance: RebalanceMode::Off,
            io_timeout_ms: 50,
            session_tier: SessionTier::Threads,
            max_sessions: None,
            retry: RetrySpec::default(),
            replicas: Vec::new(),
            router: None,
        }
    }

    /// Parses the topology file format described in the
    /// [module docs](crate::topology).
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] — naming the offending line — for any
    /// malformed input: unknown sections or keys, duplicate keys or
    /// sections, values that do not parse (including out-of-range
    /// numbers), `shards`/`autoshard` given together, and for any
    /// semantic problem [`FleetTopology::validate`] would report. Hostile
    /// input never panics.
    pub fn parse(input: &str) -> Result<Self, PirError> {
        Parser::new().parse(input)
    }

    /// Reads and [`parse`](FleetTopology::parse)s a topology file.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] for unreadable files and for
    /// everything [`FleetTopology::parse`] rejects.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Self, PirError> {
        let path = path.as_ref();
        let input = std::fs::read_to_string(path).map_err(|err| PirError::Config {
            reason: format!("reading topology file `{}`: {err}", path.display()),
        })?;
        Self::parse(&input).map_err(|err| match err {
            PirError::Config { reason } => PirError::Config {
                reason: format!("{}: {reason}", path.display()),
            },
            other => other,
        })
    }

    /// Serializes the topology into the file format, canonically: every
    /// fleet-level key is written with its resolved value, optional
    /// per-replica overrides only when set. `parse(to_config_string(t))`
    /// reproduces `t` exactly.
    #[must_use]
    pub fn to_config_string(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("# IM-PIR fleet topology\n[fleet]\n");
        let _ = writeln!(out, "records = {}", self.records);
        let _ = writeln!(out, "record-bytes = {}", self.record_bytes);
        let _ = writeln!(out, "seed = {}", self.seed);
        write_sharding(&mut out, self.sharding);
        let _ = writeln!(out, "journal-batches = {}", self.journal_batches);
        let _ = writeln!(out, "scan-kernel = {}", self.scan_kernel);
        let _ = writeln!(out, "rebalance = {}", self.rebalance);
        let _ = writeln!(out, "io-timeout-ms = {}", self.io_timeout_ms);
        let _ = writeln!(out, "session-tier = {}", self.session_tier);
        // `max-sessions` has no "unlimited" spelling — absence is the
        // canonical form, keeping parse ∘ serialize ∘ parse the identity.
        if let Some(max_sessions) = self.max_sessions {
            let _ = writeln!(out, "max-sessions = {max_sessions}");
        }
        let _ = writeln!(out, "retry-attempts = {}", self.retry.attempts);
        let _ = writeln!(out, "retry-backoff-ms = {}", self.retry.backoff_ms);
        let _ = writeln!(out, "retry-max-backoff-ms = {}", self.retry.max_backoff_ms);
        let _ = writeln!(out, "retry-io-timeout-ms = {}", self.retry.io_timeout_ms);
        for replica in &self.replicas {
            let _ = writeln!(out, "\n[replica {}]", replica.name);
            let transport = match replica.transport {
                TransportKind::Local => "local",
                TransportKind::Tcp => "tcp",
            };
            let _ = writeln!(out, "transport = {transport}");
            if let Some(listen) = &replica.listen {
                let _ = writeln!(out, "listen = {listen}");
            }
            match replica.backend {
                BackendSpec::Cpu => {
                    let _ = writeln!(out, "backend = cpu");
                }
                BackendSpec::Pim { dpus, clusters } => {
                    let _ = writeln!(out, "backend = pim");
                    let _ = writeln!(out, "dpus = {dpus}");
                    let _ = writeln!(out, "clusters = {clusters}");
                }
            }
            if let Some(sharding) = replica.sharding {
                write_sharding(&mut out, sharding);
            }
            if let Some(kernel) = replica.scan_kernel {
                let _ = writeln!(out, "scan-kernel = {kernel}");
            }
        }
        if let Some(router) = &self.router {
            out.push_str("\n[router]\n");
            let _ = writeln!(out, "listen = {}", router.listen);
            let _ = writeln!(out, "probe-interval-ms = {}", router.probe_interval_ms);
            let _ = writeln!(out, "max-lag-epochs = {}", router.max_lag_epochs);
        }
        out
    }

    /// Checks the topology's semantic invariants.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] for: an empty database geometry, no
    /// replicas, duplicate or malformed replica names, a TCP replica
    /// without a listen address, zero shard counts, zero DPUs/clusters, a
    /// `scan-kernel` on a PIM replica, a zero I/O timeout or retry
    /// attempt count, and a router over non-TCP replicas.
    pub fn validate(&self) -> Result<(), PirError> {
        if self.records == 0 {
            return config("the fleet needs at least 1 record");
        }
        if self.record_bytes == 0 {
            return config("record-bytes must be at least 1");
        }
        if self.io_timeout_ms == 0 {
            return config("io-timeout-ms must be at least 1");
        }
        if self.retry.attempts == 0 {
            return config("retry-attempts must be at least 1");
        }
        if self.max_sessions == Some(0) {
            return config("max-sessions must be at least 1 (omit the key for no session budget)");
        }
        validate_sharding(self.sharding, "[fleet]")?;
        if self.replicas.is_empty() {
            return config("the fleet needs at least one [replica NAME] section");
        }
        let mut names: Vec<&str> = Vec::with_capacity(self.replicas.len());
        for replica in &self.replicas {
            let name = replica.name.as_str();
            if !valid_name(name) {
                return config(format!(
                    "replica name `{name}` is invalid: use letters, digits, `.`, `_` or `-`"
                ));
            }
            if names.contains(&name) {
                return config(format!("duplicate replica name `{name}`"));
            }
            names.push(name);
            if replica.transport == TransportKind::Tcp && replica.listen.is_none() {
                return config(format!(
                    "replica `{name}`: transport tcp requires a listen address"
                ));
            }
            if let Some(sharding) = replica.sharding {
                validate_sharding(sharding, &format!("replica `{name}`"))?;
            }
            match replica.backend {
                BackendSpec::Cpu => {}
                BackendSpec::Pim { dpus, clusters } => {
                    if dpus == 0 || clusters == 0 {
                        return config(format!(
                            "replica `{name}`: dpus and clusters must be at least 1"
                        ));
                    }
                    if replica.scan_kernel.is_some() {
                        return config(format!(
                            "replica `{name}`: scan-kernel applies to the cpu backend only"
                        ));
                    }
                }
            }
        }
        if let Some(router) = &self.router {
            if router.listen.is_empty() {
                return config("[router]: listen is required");
            }
            if router.probe_interval_ms == 0 {
                return config("[router]: probe-interval-ms must be at least 1");
            }
            for replica in &self.replicas {
                if replica.transport != TransportKind::Tcp {
                    return config(format!(
                        "[router]: replica `{}` is not tcp — the router can only forward \
                         to replicas it can dial",
                        replica.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// The index of the replica named `name`, if any.
    #[must_use]
    pub fn replica_index(&self, name: &str) -> Option<usize> {
        self.replicas.iter().position(|r| r.name == name)
    }

    /// The synthetic database every replica of this fleet holds.
    ///
    /// # Errors
    ///
    /// Propagates [`Database::random`] failures (degenerate geometry).
    pub fn build_database(&self) -> Result<Arc<Database>, PirError> {
        Ok(Arc::new(Database::random(
            self.records,
            self.record_bytes,
            self.seed,
        )?))
    }

    /// Builds the engine replica `replica` runs: the one construction path
    /// behind `impir-server`, the examples and the topology-based client
    /// constructors. The replica's backend kind, shard policy and kernel
    /// choice (falling back to the fleet's) decide what gets built;
    /// `autoshard` policies run the capacity planner (with probe-scan
    /// calibration for [`ShardPolicy::Calibrated`]).
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] for an out-of-range replica index or
    /// an invalid topology, and propagates backend/planner construction
    /// failures.
    pub fn build_engine(&self, replica: usize) -> Result<FleetEngine, PirError> {
        self.validate()?;
        let spec = self.replicas.get(replica).ok_or_else(|| PirError::Config {
            reason: format!(
                "replica index {replica} is out of range: the topology has {} replica(s)",
                self.replicas.len()
            ),
        })?;
        let database = self.build_database()?;
        let sharding = spec.sharding.unwrap_or(self.sharding);
        let (records, record_bytes, seed) = (self.records, self.record_bytes, self.seed);
        let factory = self.backend_factory(replica)?;
        match spec.backend {
            BackendSpec::Cpu => {
                let cpu_config = self.cpu_backend_config(spec);
                let engine_config = EngineConfig {
                    journal_batches: self.journal_batches,
                    ..EngineConfig::default()
                };
                match sharding {
                    ShardPolicy::Uniform(shards) => {
                        let sharded = ShardedDatabase::uniform(database, shards)?;
                        QueryEngine::sharded(&sharded, engine_config, factory)
                    }
                    _ => {
                        let profile = cpu_config.capacity_profile()?;
                        let planner = autoshard_planner(profile, records, sharding, || {
                            let probe_db = Arc::new(Database::random(
                                records.min(PROBE_RECORDS),
                                record_bytes,
                                seed,
                            )?);
                            let mut probe = CpuPirServer::new(probe_db, cpu_config)?;
                            measure_scan_bandwidth(&mut probe, PROBE_SCANS)
                        })?;
                        QueryEngine::planned(database, engine_config, &planner, factory)
                    }
                }
            }
            BackendSpec::Pim { dpus, clusters } => {
                let config = Self::pim_backend_config(dpus, clusters);
                let engine_config =
                    EngineConfig::new(BatchConfig::default(), config.eval_strategy())?;
                let engine_config = EngineConfig {
                    journal_batches: self.journal_batches,
                    ..engine_config
                };
                match sharding {
                    ShardPolicy::Uniform(shards) => {
                        let sharded = ShardedDatabase::uniform(database, shards)?;
                        QueryEngine::sharded(&sharded, engine_config, factory)
                    }
                    _ => {
                        let profile = config.capacity_profile(record_bytes)?;
                        let probe_records = records.min(profile.record_capacity).min(PROBE_RECORDS);
                        let planner = autoshard_planner(profile, records, sharding, move || {
                            let probe_db =
                                Arc::new(Database::random(probe_records, record_bytes, seed)?);
                            let mut probe = ImPirServer::new(probe_db, config)?;
                            measure_scan_bandwidth(&mut probe, PROBE_SCANS)
                        })?;
                        QueryEngine::planned(database, engine_config, &planner, factory)
                    }
                }
            }
        }
    }

    /// The per-shard backend constructor replica `replica`'s engine was
    /// built with, as a retainable [`BackendFactory`]: the service layer
    /// hands it back to [`QueryEngine::rebalance`] so live shard rebuilds
    /// produce backends identical in kind and geometry policy to the
    /// construction-time ones.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] for an out-of-range replica index.
    pub fn backend_factory(&self, replica: usize) -> Result<BackendFactory, PirError> {
        let spec = self.replicas.get(replica).ok_or_else(|| PirError::Config {
            reason: format!(
                "replica index {replica} is out of range: the topology has {} replica(s)",
                self.replicas.len()
            ),
        })?;
        match spec.backend {
            BackendSpec::Cpu => {
                let config = self.cpu_backend_config(spec);
                Ok(Box::new(move |shard_db, _| {
                    CpuPirServer::new(shard_db, config.clone())
                        .map(|server| Box::new(server) as BoxedBackend)
                }))
            }
            BackendSpec::Pim { dpus, clusters } => {
                let config = Self::pim_backend_config(dpus, clusters);
                Ok(Box::new(move |shard_db, _| {
                    ImPirServer::new(shard_db, config.clone())
                        .map(|server| Box::new(server) as BoxedBackend)
                }))
            }
        }
    }

    /// The CPU backend config a replica runs (kernel choice resolved
    /// against the fleet default).
    fn cpu_backend_config(&self, spec: &ReplicaSpec) -> CpuServerConfig {
        CpuServerConfig {
            scan_kernel: spec.scan_kernel.unwrap_or(self.scan_kernel),
            ..CpuServerConfig::baseline()
        }
    }

    /// The PIM backend config for a replica with the given DPU geometry.
    fn pim_backend_config(dpus: usize, clusters: usize) -> ImPirConfig {
        ImPirConfig {
            pim: PimConfig::tiny_test(dpus, PIM_MRAM_BYTES),
            clusters,
            eval_threads: 1,
        }
    }

    /// Connects a client-side transport to replica `replica`: a
    /// [`TcpTransport`] (dialing the listen address under the topology's
    /// [`RetrySpec`]) for TCP replicas, a freshly built in-process engine
    /// behind a [`LocalTransport`] for local ones.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Config`] for an out-of-range index or invalid
    /// topology, and [`PirError::Protocol`] when a TCP replica cannot be
    /// reached.
    pub fn connect(&self, replica: usize) -> Result<Box<dyn PirTransport>, PirError> {
        self.validate()?;
        let spec = self.replicas.get(replica).ok_or_else(|| PirError::Config {
            reason: format!(
                "replica index {replica} is out of range: the topology has {} replica(s)",
                self.replicas.len()
            ),
        })?;
        match spec.transport {
            TransportKind::Local => Ok(Box::new(LocalTransport::new(self.build_engine(replica)?))),
            TransportKind::Tcp => {
                let listen = spec.listen.as_deref().ok_or_else(|| PirError::Config {
                    reason: format!(
                        "replica `{}`: transport tcp requires a listen address",
                        spec.name
                    ),
                })?;
                Ok(Box::new(TcpTransport::connect_with(
                    listen,
                    self.retry.policy(),
                )?))
            }
        }
    }

    /// The server-side per-session socket timeout this topology asks for.
    #[must_use]
    pub fn service_io_timeout(&self) -> Duration {
        Duration::from_millis(self.io_timeout_ms)
    }
}

/// Builds the capacity-aware planner for a fleet of identical backends:
/// the shard count is the smallest number of backends whose aggregate
/// record capacity holds the database (1 for capacity-unbounded
/// backends), with the measured probe bandwidth blended in when
/// calibrating.
fn autoshard_planner(
    profile: CapacityProfile,
    records: u64,
    sharding: ShardPolicy,
    probe: impl FnOnce() -> Result<f64, PirError>,
) -> Result<ShardPlanner, PirError> {
    let profile = if sharding == ShardPolicy::Calibrated {
        let measured = probe()?;
        profile.with_measured_scan_bandwidth(measured, CALIBRATION_BLEND)?
    } else {
        profile
    };
    let backends = records
        .div_ceil(profile.record_capacity)
        .clamp(1, records.max(1)) as usize;
    ShardPlanner::new(vec![profile; backends])
}

fn write_sharding(out: &mut String, sharding: ShardPolicy) {
    use std::fmt::Write;
    match sharding {
        ShardPolicy::Uniform(shards) => {
            let _ = writeln!(out, "shards = {shards}");
        }
        ShardPolicy::Declared => {
            let _ = writeln!(out, "autoshard = declared");
        }
        ShardPolicy::Calibrated => {
            let _ = writeln!(out, "autoshard = calibrated");
        }
    }
}

fn validate_sharding(sharding: ShardPolicy, section: &str) -> Result<(), PirError> {
    if sharding == ShardPolicy::Uniform(0) {
        return config(format!("{section}: shards must be at least 1"));
    }
    Ok(())
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

fn config<T>(reason: impl Into<String>) -> Result<T, PirError> {
    Err(PirError::Config {
        reason: reason.into(),
    })
}

// ---------------------------------------------------------------------------
// The parser.
// ---------------------------------------------------------------------------

/// Which section the parser is currently inside.
enum Section {
    /// Before any section header.
    Preamble,
    Fleet,
    Replica(usize),
    Router,
}

/// A replica section under construction; finalized into a [`ReplicaSpec`]
/// once the whole file is read (keys may arrive in any order).
struct ReplicaBuilder {
    name: String,
    header_line: usize,
    listen: Option<String>,
    transport: Option<TransportKind>,
    backend: Option<BackendSpec>,
    dpus: Option<usize>,
    clusters: Option<usize>,
    sharding: Option<ShardPolicy>,
    scan_kernel: Option<KernelChoice>,
    seen: Vec<String>,
}

struct Parser {
    records: Option<u64>,
    record_bytes: Option<usize>,
    seed: Option<u64>,
    sharding: Option<ShardPolicy>,
    journal_batches: Option<usize>,
    scan_kernel: Option<KernelChoice>,
    rebalance: Option<RebalanceMode>,
    io_timeout_ms: Option<u64>,
    session_tier: Option<SessionTier>,
    max_sessions: Option<usize>,
    retry: RetrySpec,
    replicas: Vec<ReplicaBuilder>,
    router_listen: Option<String>,
    router_probe_interval_ms: Option<u64>,
    router_max_lag_epochs: Option<u64>,
    fleet_seen: Vec<String>,
    router_seen: Vec<String>,
    saw_fleet: bool,
    saw_router: bool,
    section: Section,
}

fn line_error<T>(line: usize, reason: impl std::fmt::Display) -> Result<T, PirError> {
    Err(PirError::Config {
        reason: format!("line {line}: {reason}"),
    })
}

impl Parser {
    fn new() -> Self {
        Parser {
            records: None,
            record_bytes: None,
            seed: None,
            sharding: None,
            journal_batches: None,
            scan_kernel: None,
            rebalance: None,
            io_timeout_ms: None,
            session_tier: None,
            max_sessions: None,
            retry: RetrySpec::default(),
            replicas: Vec::new(),
            router_listen: None,
            router_probe_interval_ms: None,
            router_max_lag_epochs: None,
            fleet_seen: Vec::new(),
            router_seen: Vec::new(),
            saw_fleet: false,
            saw_router: false,
            section: Section::Preamble,
        }
    }

    fn parse(mut self, input: &str) -> Result<FleetTopology, PirError> {
        for (index, raw) in input.lines().enumerate() {
            let line_no = index + 1;
            // Everything after `#` is a comment; what remains must be a
            // section header or a `key = value` pair.
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(header) = rest.strip_suffix(']') else {
                    return line_error(line_no, "section header is missing the closing `]`");
                };
                self.open_section(header.trim(), line_no)?;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return line_error(
                    line_no,
                    format!("expected `key = value` or `[section]`, got `{line}`"),
                );
            };
            let key = key.trim();
            let value = value.trim();
            if key.is_empty() {
                return line_error(line_no, "empty key before `=`");
            }
            if value.is_empty() {
                return line_error(line_no, format!("key `{key}` has an empty value"));
            }
            self.set_key(key, value, line_no)?;
        }
        self.finish()
    }

    fn open_section(&mut self, header: &str, line_no: usize) -> Result<(), PirError> {
        if header == "fleet" {
            if self.saw_fleet {
                return line_error(line_no, "duplicate [fleet] section");
            }
            self.saw_fleet = true;
            self.section = Section::Fleet;
            return Ok(());
        }
        if header == "router" {
            if self.saw_router {
                return line_error(line_no, "duplicate [router] section");
            }
            self.saw_router = true;
            self.section = Section::Router;
            return Ok(());
        }
        if let Some(name) = header.strip_prefix("replica") {
            let name = name.trim();
            if name.is_empty() {
                return line_error(line_no, "replica section needs a name: `[replica NAME]`");
            }
            if !valid_name(name) {
                return line_error(
                    line_no,
                    format!(
                        "replica name `{name}` is invalid: use letters, digits, `.`, `_` or `-`"
                    ),
                );
            }
            if self.replicas.iter().any(|r| r.name == name) {
                return line_error(line_no, format!("duplicate replica name `{name}`"));
            }
            self.replicas.push(ReplicaBuilder {
                name: name.to_string(),
                header_line: line_no,
                listen: None,
                transport: None,
                backend: None,
                dpus: None,
                clusters: None,
                sharding: None,
                scan_kernel: None,
                seen: Vec::new(),
            });
            self.section = Section::Replica(self.replicas.len() - 1);
            return Ok(());
        }
        line_error(
            line_no,
            format!("unknown section `[{header}]` (expected [fleet], [replica NAME] or [router])"),
        )
    }

    fn set_key(&mut self, key: &str, value: &str, line_no: usize) -> Result<(), PirError> {
        match self.section {
            Section::Preamble => line_error(
                line_no,
                format!("key `{key}` appears before any section header"),
            ),
            Section::Fleet => self.set_fleet_key(key, value, line_no),
            Section::Replica(index) => self.set_replica_key(index, key, value, line_no),
            Section::Router => self.set_router_key(key, value, line_no),
        }
    }

    fn note_seen(
        seen: &mut Vec<String>,
        section: &str,
        key: &str,
        line_no: usize,
    ) -> Result<(), PirError> {
        if seen.iter().any(|k| k == key) {
            return line_error(line_no, format!("duplicate key `{key}` in {section}"));
        }
        seen.push(key.to_string());
        Ok(())
    }

    fn set_fleet_key(&mut self, key: &str, value: &str, line_no: usize) -> Result<(), PirError> {
        Self::note_seen(&mut self.fleet_seen, "[fleet]", key, line_no)?;
        match key {
            "records" => self.records = Some(parse_u64(key, value, line_no)?),
            "record-bytes" => self.record_bytes = Some(parse_usize(key, value, line_no)?),
            "seed" => self.seed = Some(parse_u64(key, value, line_no)?),
            "shards" => {
                if matches!(
                    self.sharding,
                    Some(ShardPolicy::Declared | ShardPolicy::Calibrated)
                ) {
                    return line_error(line_no, EXCLUSIVE_SHARDING);
                }
                self.sharding = Some(ShardPolicy::Uniform(parse_usize(key, value, line_no)?));
            }
            "autoshard" => {
                if matches!(self.sharding, Some(ShardPolicy::Uniform(_))) {
                    return line_error(line_no, EXCLUSIVE_SHARDING);
                }
                self.sharding = Some(parse_autoshard(value, line_no)?);
            }
            "journal-batches" => self.journal_batches = Some(parse_usize(key, value, line_no)?),
            "scan-kernel" => self.scan_kernel = Some(parse_kernel(value, line_no)?),
            "rebalance" => self.rebalance = Some(parse_rebalance(value, line_no)?),
            "io-timeout-ms" => self.io_timeout_ms = Some(parse_u64(key, value, line_no)?),
            "session-tier" => self.session_tier = Some(parse_session_tier(value, line_no)?),
            "max-sessions" => {
                let sessions = parse_usize(key, value, line_no)?;
                if sessions == 0 {
                    return line_error(
                        line_no,
                        "max-sessions must be at least 1 (omit the key for no session budget)",
                    );
                }
                self.max_sessions = Some(sessions);
            }
            "retry-attempts" => self.retry.attempts = parse_u32(key, value, line_no)?,
            "retry-backoff-ms" => self.retry.backoff_ms = parse_u64(key, value, line_no)?,
            "retry-max-backoff-ms" => self.retry.max_backoff_ms = parse_u64(key, value, line_no)?,
            "retry-io-timeout-ms" => self.retry.io_timeout_ms = parse_u64(key, value, line_no)?,
            other => {
                return line_error(line_no, format!("unknown key `{other}` in [fleet]"));
            }
        }
        Ok(())
    }

    fn set_replica_key(
        &mut self,
        index: usize,
        key: &str,
        value: &str,
        line_no: usize,
    ) -> Result<(), PirError> {
        let replica = &mut self.replicas[index];
        let section = format!("[replica {}]", replica.name);
        Self::note_seen(&mut replica.seen, &section, key, line_no)?;
        match key {
            "listen" => replica.listen = Some(value.to_string()),
            "transport" => {
                replica.transport = Some(match value {
                    "local" => TransportKind::Local,
                    "tcp" => TransportKind::Tcp,
                    other => {
                        return line_error(
                            line_no,
                            format!("transport expects `local` or `tcp`, got `{other}`"),
                        )
                    }
                });
            }
            "backend" => {
                replica.backend = Some(match value {
                    "cpu" => BackendSpec::Cpu,
                    // Geometry is patched in at finalize time, once the
                    // whole section (keys in any order) has been read.
                    "pim" => BackendSpec::Pim {
                        dpus: 0,
                        clusters: 0,
                    },
                    other => {
                        return line_error(
                            line_no,
                            format!("backend expects `cpu` or `pim`, got `{other}`"),
                        )
                    }
                });
            }
            "dpus" => replica.dpus = Some(parse_usize(key, value, line_no)?),
            "clusters" => replica.clusters = Some(parse_usize(key, value, line_no)?),
            "shards" => {
                if matches!(
                    replica.sharding,
                    Some(ShardPolicy::Declared | ShardPolicy::Calibrated)
                ) {
                    return line_error(line_no, EXCLUSIVE_SHARDING);
                }
                replica.sharding = Some(ShardPolicy::Uniform(parse_usize(key, value, line_no)?));
            }
            "autoshard" => {
                if matches!(replica.sharding, Some(ShardPolicy::Uniform(_))) {
                    return line_error(line_no, EXCLUSIVE_SHARDING);
                }
                replica.sharding = Some(parse_autoshard(value, line_no)?);
            }
            "scan-kernel" => replica.scan_kernel = Some(parse_kernel(value, line_no)?),
            other => {
                return line_error(line_no, format!("unknown key `{other}` in {section}"));
            }
        }
        Ok(())
    }

    fn set_router_key(&mut self, key: &str, value: &str, line_no: usize) -> Result<(), PirError> {
        Self::note_seen(&mut self.router_seen, "[router]", key, line_no)?;
        match key {
            "listen" => self.router_listen = Some(value.to_string()),
            "probe-interval-ms" => {
                self.router_probe_interval_ms = Some(parse_u64(key, value, line_no)?);
            }
            "max-lag-epochs" => self.router_max_lag_epochs = Some(parse_u64(key, value, line_no)?),
            other => {
                return line_error(line_no, format!("unknown key `{other}` in [router]"));
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<FleetTopology, PirError> {
        if !self.saw_fleet {
            return config("the topology needs a [fleet] section");
        }
        let Some(records) = self.records else {
            return config("[fleet]: records is required");
        };
        let mut replicas = Vec::with_capacity(self.replicas.len());
        for builder in self.replicas {
            replicas.push(builder.finish()?);
        }
        let router = if self.saw_router {
            let Some(listen) = self.router_listen else {
                return config("[router]: listen is required");
            };
            Some(RouterSpec {
                listen,
                probe_interval_ms: self
                    .router_probe_interval_ms
                    .unwrap_or(DEFAULT_PROBE_INTERVAL_MS),
                max_lag_epochs: self.router_max_lag_epochs.unwrap_or(0),
            })
        } else {
            None
        };
        let topology = FleetTopology {
            records,
            record_bytes: self.record_bytes.unwrap_or(32),
            seed: self.seed.unwrap_or(42),
            sharding: self.sharding.unwrap_or(ShardPolicy::Uniform(1)),
            journal_batches: self.journal_batches.unwrap_or(DEFAULT_JOURNAL_BATCHES),
            scan_kernel: self.scan_kernel.unwrap_or(KernelChoice::Auto),
            rebalance: self.rebalance.unwrap_or_default(),
            io_timeout_ms: self.io_timeout_ms.unwrap_or(50),
            session_tier: self.session_tier.unwrap_or_default(),
            max_sessions: self.max_sessions,
            retry: self.retry,
            replicas,
            router,
        };
        topology.validate()?;
        Ok(topology)
    }
}

impl ReplicaBuilder {
    fn finish(self) -> Result<ReplicaSpec, PirError> {
        let backend = match self.backend {
            Some(BackendSpec::Pim { .. }) => BackendSpec::Pim {
                dpus: self.dpus.unwrap_or(8),
                clusters: self.clusters.unwrap_or(1),
            },
            Some(BackendSpec::Cpu) | None => {
                if self.dpus.is_some() || self.clusters.is_some() {
                    return line_error(
                        self.header_line,
                        format!(
                            "[replica {}]: dpus/clusters apply to the pim backend only",
                            self.name
                        ),
                    );
                }
                BackendSpec::Cpu
            }
        };
        let transport = self.transport.unwrap_or(if self.listen.is_some() {
            TransportKind::Tcp
        } else {
            TransportKind::Local
        });
        Ok(ReplicaSpec {
            name: self.name,
            transport,
            listen: self.listen,
            backend,
            sharding: self.sharding,
            scan_kernel: self.scan_kernel,
        })
    }
}

const EXCLUSIVE_SHARDING: &str = "`autoshard` and `shards` are mutually exclusive: `autoshard` \
     derives the shard count and boundaries from backend capacity, `shards` sets a manual \
     uniform split";

fn parse_u64(key: &str, value: &str, line_no: usize) -> Result<u64, PirError> {
    value.parse().map_err(|_| PirError::Config {
        reason: format!(
            "line {line_no}: `{key}` expects an unsigned 64-bit integer, got `{value}`"
        ),
    })
}

fn parse_u32(key: &str, value: &str, line_no: usize) -> Result<u32, PirError> {
    value.parse().map_err(|_| PirError::Config {
        reason: format!(
            "line {line_no}: `{key}` expects an unsigned 32-bit integer, got `{value}`"
        ),
    })
}

fn parse_usize(key: &str, value: &str, line_no: usize) -> Result<usize, PirError> {
    value.parse().map_err(|_| PirError::Config {
        reason: format!("line {line_no}: `{key}` expects an unsigned integer, got `{value}`"),
    })
}

fn parse_autoshard(value: &str, line_no: usize) -> Result<ShardPolicy, PirError> {
    match value {
        "declared" => Ok(ShardPolicy::Declared),
        "calibrated" => Ok(ShardPolicy::Calibrated),
        other => line_error(
            line_no,
            format!("autoshard expects `declared` or `calibrated`, got `{other}`"),
        ),
    }
}

fn parse_session_tier(value: &str, line_no: usize) -> Result<SessionTier, PirError> {
    SessionTier::parse(value).ok_or_else(|| PirError::Config {
        reason: format!(
            "line {line_no}: session-tier expects `threads` or `events`, got `{value}`"
        ),
    })
}

fn parse_rebalance(value: &str, line_no: usize) -> Result<RebalanceMode, PirError> {
    RebalanceMode::parse(value).ok_or_else(|| PirError::Config {
        reason: format!("line {line_no}: rebalance expects `auto` or `off`, got `{value}`"),
    })
}

fn parse_kernel(value: &str, line_no: usize) -> Result<KernelChoice, PirError> {
    KernelChoice::parse(value).ok_or_else(|| PirError::Config {
        reason: format!(
            "line {line_no}: scan-kernel expects auto, scalar, wide or unrolled, got `{value}`"
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> &'static str {
        "[fleet]\nrecords = 64\n\n[replica a]\nlisten = 127.0.0.1:0\n"
    }

    #[test]
    fn parses_minimal_fleet_with_defaults() {
        let topology = FleetTopology::parse(minimal()).expect("minimal topology parses");
        assert_eq!(topology.records, 64);
        assert_eq!(topology.record_bytes, 32);
        assert_eq!(topology.seed, 42);
        assert_eq!(topology.sharding, ShardPolicy::Uniform(1));
        assert_eq!(topology.journal_batches, DEFAULT_JOURNAL_BATCHES);
        assert_eq!(topology.scan_kernel, KernelChoice::Auto);
        assert_eq!(topology.rebalance, RebalanceMode::Off);
        assert_eq!(topology.replicas.len(), 1);
        let replica = &topology.replicas[0];
        assert_eq!(replica.name, "a");
        // A listen address without an explicit transport means TCP.
        assert_eq!(replica.transport, TransportKind::Tcp);
        assert_eq!(replica.backend, BackendSpec::Cpu);
        assert!(topology.router.is_none());
    }

    #[test]
    fn round_trips_through_the_serializer() {
        let input = "\
[fleet]
records = 512
record-bytes = 16
seed = 9
autoshard = declared
journal-batches = 8
scan-kernel = wide
rebalance = auto
io-timeout-ms = 20
session-tier = events
max-sessions = 128
retry-attempts = 4
retry-backoff-ms = 5
retry-max-backoff-ms = 100
retry-io-timeout-ms = 250

[replica cpu-0]
listen = 127.0.0.1:7700
shards = 2
scan-kernel = scalar

[replica pim-0]
listen = 127.0.0.1:7701
backend = pim
dpus = 4
clusters = 2

[router]
listen = 127.0.0.1:7800
probe-interval-ms = 100
max-lag-epochs = 1
";
        let parsed = FleetTopology::parse(input).expect("parses");
        assert_eq!(parsed.rebalance, RebalanceMode::Auto);
        assert_eq!(parsed.session_tier, SessionTier::Events);
        assert_eq!(parsed.max_sessions, Some(128));
        let reparsed =
            FleetTopology::parse(&parsed.to_config_string()).expect("serialized form parses");
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn rejects_unknown_rebalance_modes() {
        let err = FleetTopology::parse("[fleet]\nrecords = 4\nrebalance = maybe\n")
            .expect_err("bad rebalance value must fail");
        assert!(err.to_string().contains("rebalance"), "{err}");
    }

    #[test]
    fn rejects_unknown_session_tiers_and_zero_session_budgets() {
        let err = FleetTopology::parse("[fleet]\nrecords = 4\nsession-tier = fibers\n")
            .expect_err("bad session-tier value must fail");
        assert!(err.to_string().contains("session-tier"), "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");

        // A budget of zero sessions would accept nothing; the parser names
        // the offending line, and validate() catches programmatic zeros.
        let err = FleetTopology::parse("[fleet]\nrecords = 4\nmax-sessions = 0\n")
            .expect_err("zero session budget must fail");
        assert!(err.to_string().contains("max-sessions"), "{err}");
        assert!(err.to_string().contains("line 3"), "{err}");
        let mut topology = FleetTopology::new(4, 32, 1);
        topology.replicas.push(ReplicaSpec::local("a"));
        topology.max_sessions = Some(0);
        assert!(topology.validate().is_err());
    }

    #[test]
    fn session_tier_defaults_to_threads_and_round_trips() {
        let topology = FleetTopology::parse(minimal()).expect("parses");
        assert_eq!(topology.session_tier, SessionTier::Threads);
        assert_eq!(topology.max_sessions, None);
        // The serializer writes the resolved tier but omits the absent
        // session budget, so the round trip stays the identity.
        let serialized = topology.to_config_string();
        assert!(serialized.contains("session-tier = threads"));
        assert!(!serialized.contains("max-sessions"));
        assert_eq!(
            FleetTopology::parse(&serialized).expect("reparses"),
            topology
        );
    }

    #[test]
    fn backend_factory_matches_the_built_engine() {
        let mut topology = FleetTopology::new(96, 16, 5);
        topology.replicas.push(ReplicaSpec::local("cpu"));
        let mut pim = ReplicaSpec::local("pim");
        pim.backend = BackendSpec::Pim {
            dpus: 4,
            clusters: 2,
        };
        topology.replicas.push(pim);
        for replica in 0..2 {
            let mut factory = topology.backend_factory(replica).expect("factory builds");
            let shard_db = topology.build_database().expect("database builds");
            let backend = factory(shard_db, 0).expect("backend builds");
            assert_eq!(backend.num_records(), 96);
            assert_eq!(backend.record_size(), 16);
        }
        assert!(topology.backend_factory(2).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: [(&str, &str); 6] = [
            ("[fleet]\nrecords = 64\nbogus = 1\n", "line 3"),
            ("[fleet]\nrecords = 64\nrecords = 65\n", "line 3"),
            ("[fleet]\nrecords = 99999999999999999999\n", "line 2"),
            ("[fleet]\nrecords = 64\n[replica a\n", "line 3"),
            ("records = 64\n", "line 1"),
            (
                "[fleet]\nrecords = 64\nshards = 2\nautoshard = declared\n",
                "line 4",
            ),
        ];
        for (input, needle) in cases {
            let err = FleetTopology::parse(input).expect_err("must fail");
            let PirError::Config { reason } = &err else {
                panic!("expected a Config error, got {err:?}");
            };
            assert!(
                reason.contains(needle),
                "error for {input:?} should name {needle}: {reason}"
            );
        }
    }

    #[test]
    fn rejects_semantic_problems() {
        // TCP without a listen address.
        let err = FleetTopology::parse("[fleet]\nrecords = 4\n[replica a]\ntransport = tcp\n")
            .expect_err("tcp needs listen");
        assert!(err.to_string().contains("listen"), "{err}");
        // dpus on a cpu replica.
        let err = FleetTopology::parse("[fleet]\nrecords = 4\n[replica a]\ndpus = 4\n")
            .expect_err("dpus needs pim");
        assert!(err.to_string().contains("pim"), "{err}");
        // scan-kernel on a pim replica.
        let err = FleetTopology::parse(
            "[fleet]\nrecords = 4\n[replica a]\nlisten = x:0\nbackend = pim\nscan-kernel = wide\n",
        )
        .expect_err("scan-kernel needs cpu");
        assert!(err.to_string().contains("cpu"), "{err}");
        // A router over a local replica.
        let err = FleetTopology::parse(
            "[fleet]\nrecords = 4\n[replica a]\ntransport = local\n[router]\nlisten = x:0\n",
        )
        .expect_err("router needs tcp replicas");
        assert!(err.to_string().contains("router"), "{err}");
    }

    #[test]
    fn builds_a_local_engine_from_the_topology() {
        let mut topology = FleetTopology::new(128, 16, 3);
        topology.replicas.push(ReplicaSpec::local("solo"));
        topology.replicas[0].sharding = Some(ShardPolicy::Uniform(2));
        let engine = topology.build_engine(0).expect("engine builds");
        assert_eq!(engine.num_records(), 128);
        assert_eq!(engine.record_size(), 16);
        assert_eq!(engine.shard_count(), 2);
    }

    #[test]
    fn mixed_backends_build_through_one_engine_type() {
        let mut topology = FleetTopology::new(96, 32, 5);
        topology.replicas.push(ReplicaSpec::local("cpu"));
        let mut pim = ReplicaSpec::local("pim");
        pim.backend = BackendSpec::Pim {
            dpus: 4,
            clusters: 1,
        };
        topology.replicas.push(pim);
        let engines: Vec<FleetEngine> = (0..2)
            .map(|i| topology.build_engine(i).expect("engine builds"))
            .collect();
        assert!(engines.iter().all(|e| e.num_records() == 96));
    }

    #[test]
    fn autoshard_declared_builds_for_pim() {
        let mut topology = FleetTopology::new(64, 32, 1);
        let mut pim = ReplicaSpec::local("pim");
        pim.backend = BackendSpec::Pim {
            dpus: 4,
            clusters: 1,
        };
        pim.sharding = Some(ShardPolicy::Declared);
        topology.replicas.push(pim);
        let engine = topology.build_engine(0).expect("autoshard engine builds");
        assert!(engine.shard_count() >= 1);
    }
}
