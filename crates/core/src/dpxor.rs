//! The `dpXOR` primitive: selector-weighted XOR over a run of records.
//!
//! This is the memory-bound linear scan at the heart of every multi-server
//! PIR query (§2.3, §3.3): for each record `j`, if the selector bit
//! `Eval(k, j)` is set, XOR the record into an accumulator. The paper's
//! whole point is *where* this scan runs — on the CPU (baseline), on a GPU,
//! or in memory on DPUs — but the arithmetic is identical everywhere, so
//! one shared implementation backs the CPU server, the CPU/GPU baselines
//! and the DPU kernel.
//!
//! Two code paths are provided: a byte-wise scalar loop (the reference) and
//! a 64-bit-wide path that XORs eight bytes per operation — the portable
//! stand-in for the AVX2 256-bit XORs the paper's CPU implementations use.

use impir_dpf::SelectorVector;

/// XORs every selected record of `records` into `accumulator`, using the
/// 64-bit-wide fast path where alignment allows.
///
/// `records` must contain exactly `selector.len()` records of
/// `record_size` bytes; `accumulator` must be `record_size` bytes long.
///
/// # Panics
///
/// Panics if the slice sizes are inconsistent.
pub fn xor_select_into(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
) {
    check_shapes(records, record_size, selector, accumulator);
    if record_size.is_multiple_of(8) {
        xor_select_wide(records, record_size, selector, accumulator);
    } else {
        xor_select_scalar(records, record_size, selector, accumulator);
    }
}

/// [`xor_select_into`] with a caller-owned word scratch for the wide path,
/// so repeated scans (one per query of a batch) reuse the same accumulator
/// words instead of allocating per call.
///
/// # Panics
///
/// Panics if the slice sizes are inconsistent.
pub fn xor_select_into_with(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
    acc_words: &mut Vec<u64>,
) {
    check_shapes(records, record_size, selector, accumulator);
    if record_size.is_multiple_of(8) {
        xor_select_wide_with(records, record_size, selector, accumulator, acc_words);
    } else {
        xor_select_scalar(records, record_size, selector, accumulator);
    }
}

/// Byte-wise reference implementation of the selector-weighted XOR.
///
/// # Panics
///
/// Panics if the slice sizes are inconsistent.
pub fn xor_select_scalar(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
) {
    check_shapes(records, record_size, selector, accumulator);
    for index in 0..selector.len() {
        if selector.get(index) {
            let start = index * record_size;
            for (acc, byte) in accumulator
                .iter_mut()
                .zip(&records[start..start + record_size])
            {
                *acc ^= *byte;
            }
        }
    }
}

/// 64-bit-lane implementation: records whose size is a multiple of 8 bytes
/// are XORed eight bytes at a time (the portable analogue of the AVX2 path
/// in the paper's CPU code).
///
/// # Panics
///
/// Panics if the slice sizes are inconsistent or `record_size` is not a
/// multiple of 8.
pub fn xor_select_wide(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
) {
    let mut acc_words = Vec::new();
    xor_select_wide_with(records, record_size, selector, accumulator, &mut acc_words);
}

/// [`xor_select_wide`] with the word accumulator hoisted out into a
/// caller-owned scratch: `acc_words` is cleared and refilled, keeping its
/// capacity, so a scan loop reusing one scratch allocates nothing per call
/// in the steady state.
///
/// # Panics
///
/// Panics if the slice sizes are inconsistent or `record_size` is not a
/// multiple of 8.
pub fn xor_select_wide_with(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
    acc_words: &mut Vec<u64>,
) {
    check_shapes(records, record_size, selector, accumulator);
    assert!(
        record_size.is_multiple_of(8),
        "wide path requires record sizes that are multiples of 8 bytes"
    );
    let words_per_record = record_size / 8;
    acc_words.clear();
    acc_words.resize(words_per_record, 0);
    for (word, chunk) in acc_words.iter_mut().zip(accumulator.chunks_exact(8)) {
        *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }

    // Walk the packed selector words and only touch records with set bits —
    // on average half the records, exactly like Algorithm 1's
    // `if v[j] = 1 then t_i ← t_i ⊕ D_d[j]`.
    for (word_index, &selector_word) in selector.words().iter().enumerate() {
        if selector_word == 0 {
            continue;
        }
        let mut remaining = selector_word;
        while remaining != 0 {
            let bit = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            let record_index = word_index * 64 + bit;
            let start = record_index * record_size;
            let record = &records[start..start + record_size];
            for (acc, chunk) in acc_words.iter_mut().zip(record.chunks_exact(8)) {
                *acc ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
        }
    }

    for (chunk, word) in accumulator.chunks_exact_mut(8).zip(acc_words.iter()) {
        chunk.copy_from_slice(&word.to_le_bytes());
    }
}

/// Merges a set of per-chunk partial results into a single record by XOR —
/// the second stage of the parallel reduction (Algorithm 1's `MasterXOR`
/// on a DPU, and the host-side aggregation of per-DPU subresults).
///
/// # Panics
///
/// Panics if the partials do not all have length `record_size`.
#[must_use]
pub fn xor_reduce(partials: &[Vec<u8>], record_size: usize) -> Vec<u8> {
    let mut accumulator = vec![0u8; record_size];
    for partial in partials {
        assert_eq!(
            partial.len(),
            record_size,
            "partial result has the wrong record size"
        );
        for (acc, byte) in accumulator.iter_mut().zip(partial) {
            *acc ^= *byte;
        }
    }
    accumulator
}

/// XORs `other` into `accumulator` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_in_place(accumulator: &mut [u8], other: &[u8]) {
    assert_eq!(accumulator.len(), other.len(), "length mismatch");
    for (acc, byte) in accumulator.iter_mut().zip(other) {
        *acc ^= *byte;
    }
}

fn check_shapes(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
) {
    assert!(record_size > 0, "record size must be non-zero");
    assert_eq!(
        records.len(),
        selector.len() * record_size,
        "records buffer does not match selector length"
    );
    assert_eq!(
        accumulator.len(),
        record_size,
        "accumulator must be one record long"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_records(count: usize, record_size: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count * record_size).map(|_| rng.gen()).collect()
    }

    #[test]
    fn wide_and_scalar_agree() {
        let records = random_records(200, 32, 1);
        let selector: SelectorVector = (0..200).map(|i| i % 5 < 2).collect();
        let mut scalar = vec![0u8; 32];
        let mut wide = vec![0u8; 32];
        xor_select_scalar(&records, 32, &selector, &mut scalar);
        xor_select_wide(&records, 32, &selector, &mut wide);
        assert_eq!(scalar, wide);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch_across_calls() {
        // One scratch carried across scans of different record sizes must
        // produce the same results as fresh allocation per call.
        let mut scratch = Vec::new();
        for (count, record_size, seed) in [(64usize, 32usize, 1u64), (100, 8, 2), (30, 48, 3)] {
            let records = random_records(count, record_size, seed);
            let selector: SelectorVector = (0..count).map(|i| i % 3 != 0).collect();
            let mut reused = vec![0u8; record_size];
            let mut fresh = vec![0u8; record_size];
            xor_select_into_with(&records, record_size, &selector, &mut reused, &mut scratch);
            xor_select_into(&records, record_size, &selector, &mut fresh);
            assert_eq!(reused, fresh, "record_size={record_size}");
        }
    }

    #[test]
    fn dispatch_handles_odd_record_sizes() {
        let records = random_records(50, 7, 2);
        let selector: SelectorVector = (0..50).map(|i| i % 2 == 0).collect();
        let mut via_dispatch = vec![0u8; 7];
        let mut via_scalar = vec![0u8; 7];
        xor_select_into(&records, 7, &selector, &mut via_dispatch);
        xor_select_scalar(&records, 7, &selector, &mut via_scalar);
        assert_eq!(via_dispatch, via_scalar);
    }

    #[test]
    fn empty_selector_leaves_accumulator_unchanged() {
        let selector = SelectorVector::zeros(16);
        let records = random_records(16, 8, 3);
        let mut accumulator = vec![0xaa; 8];
        xor_select_into(&records, 8, &selector, &mut accumulator);
        assert_eq!(accumulator, vec![0xaa; 8]);
    }

    #[test]
    fn one_hot_selector_returns_that_record() {
        let records = random_records(64, 16, 4);
        let mut selector = SelectorVector::zeros(64);
        selector.set(37, true);
        let mut accumulator = vec![0u8; 16];
        xor_select_into(&records, 16, &selector, &mut accumulator);
        assert_eq!(accumulator, &records[37 * 16..38 * 16]);
    }

    #[test]
    fn xor_reduce_combines_partials() {
        let partials = vec![vec![0b1010u8, 0], vec![0b0110u8, 1], vec![0b0001u8, 1]];
        assert_eq!(xor_reduce(&partials, 2), vec![0b1101, 0]);
        assert_eq!(xor_reduce(&[], 3), vec![0, 0, 0]);
    }

    #[test]
    fn xor_in_place_is_xor() {
        let mut acc = vec![1u8, 2, 3];
        xor_in_place(&mut acc, &[1, 1, 1]);
        assert_eq!(acc, vec![0, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn shape_mismatch_panics() {
        let selector = SelectorVector::zeros(4);
        let mut acc = vec![0u8; 8];
        xor_select_into(&[0u8; 8], 8, &selector, &mut acc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_wide_matches_scalar(
            count in 1usize..300,
            words_per_record in 1usize..6,
            seed in any::<u64>(),
        ) {
            let record_size = 8 * words_per_record;
            let records = random_records(count, record_size, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
            let selector: SelectorVector = (0..count).map(|_| rng.gen()).collect();
            let mut scalar = vec![0u8; record_size];
            let mut wide = vec![0u8; record_size];
            xor_select_scalar(&records, record_size, &selector, &mut scalar);
            xor_select_wide(&records, record_size, &selector, &mut wide);
            prop_assert_eq!(scalar, wide);
        }

        #[test]
        fn prop_xor_select_is_linear(
            count in 1usize..120,
            seed in any::<u64>(),
        ) {
            // xor_select(a ⊕ b) == xor_select(a) ⊕ xor_select(b): the scan is
            // linear in the selector, the property PIR correctness rests on.
            let record_size = 16;
            let records = random_records(count, record_size, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
            let a: SelectorVector = (0..count).map(|_| rng.gen()).collect();
            let b: SelectorVector = (0..count).map(|_| rng.gen()).collect();
            let mut a_xor_b = a.clone();
            a_xor_b.xor_assign(&b);

            let mut out_a = vec![0u8; record_size];
            let mut out_b = vec![0u8; record_size];
            let mut out_ab = vec![0u8; record_size];
            xor_select_into(&records, record_size, &a, &mut out_a);
            xor_select_into(&records, record_size, &b, &mut out_b);
            xor_select_into(&records, record_size, &a_xor_b, &mut out_ab);
            xor_in_place(&mut out_a, &out_b);
            prop_assert_eq!(out_a, out_ab);
        }
    }
}
