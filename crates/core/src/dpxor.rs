//! The `dpXOR` primitive: selector-weighted XOR over a run of records.
//!
//! This is the memory-bound linear scan at the heart of every multi-server
//! PIR query (§2.3, §3.3): for each record `j`, if the selector bit
//! `Eval(k, j)` is set, XOR the record into an accumulator. The paper's
//! whole point is *where* this scan runs — on the CPU (baseline), on a GPU,
//! or in memory on DPUs — but the arithmetic is identical everywhere, so
//! one shared implementation backs the CPU server, the CPU/GPU baselines
//! and the DPU kernel.
//!
//! # Kernel dispatch
//!
//! *How* the scan is implemented is a runtime policy, not a compile-time
//! choice: every implementation lives behind the [`ScanKernel`] trait and
//! the backends pick one at startup. Three kernels are registered
//! ([`kernels`]):
//!
//! * [`ScalarKernel`] — the byte-wise reference loop. Every other kernel is
//!   tested byte-identical against it; it is never the fastest.
//! * [`WideKernel`] — the historical 64-bit path: one `u64` XOR per
//!   operation for record sizes that are multiples of 8, falling back to
//!   the scalar loop otherwise. Kept as the regression baseline the
//!   `hotpath` bench compares against.
//! * [`UnrolledKernel`] — the wide multi-word kernel: records up to 64
//!   whole words are scanned with the whole accumulator held in registers
//!   (4–8 `u64` XORs per selector-bit check for the paper's 32–64-byte
//!   records), larger records in unrolled 8-word groups, and record sizes
//!   that are *not* multiples of 8 take the word path for the aligned
//!   prefix plus a packed tail word — odd sizes no longer collapse to the
//!   byte loop.
//!
//! All word-level kernels skip all-zero selector words in one branch, so a
//! sparse selector costs ~1 branch per 64 records — on average the scan
//! touches half the records, exactly Algorithm 1's
//! `if v[j] = 1 then t_i ← t_i ⊕ D_d[j]`.
//!
//! [`best_kernel`] picks the fastest kernel for this host by a short
//! self-benchmark on first use (memoised for the process lifetime) after
//! verifying each candidate against the scalar oracle; callers that want a
//! specific kernel override the choice with [`KernelChoice`] (e.g.
//! [`crate::server::cpu::CpuServerConfig::scan_kernel`], or the
//! `IMPIR_SCAN_KERNEL` environment variable for paths that take no config).
//! The convenience entry points [`xor_select_into`] /
//! [`xor_select_into_with`] route through the dispatched kernel, so every
//! backend and baseline inherits the fast path without code changes.

use std::sync::OnceLock;

use impir_dpf::SelectorVector;

/// One implementation of the selector-weighted XOR scan.
///
/// Implementations must be pure: the only observable effect is
/// `accumulator ^= XOR of selected records`, byte-identical to
/// [`ScalarKernel`] for every geometry. `acc_words` is caller-owned scratch
/// (cleared and refilled, keeping capacity) so steady-state scan loops
/// allocate nothing; kernels that need no scratch ignore it.
pub trait ScanKernel: Send + Sync + std::fmt::Debug {
    /// Short stable name (`scalar`, `wide`, `unrolled`) used by config
    /// overrides and bench reports.
    fn name(&self) -> &'static str;

    /// XORs every selected record of `records` into `accumulator`.
    ///
    /// `records` must contain exactly `selector.len()` records of
    /// `record_size` bytes; `accumulator` must be `record_size` bytes long.
    ///
    /// # Panics
    ///
    /// Panics if the slice sizes are inconsistent.
    fn xor_select(
        &self,
        records: &[u8],
        record_size: usize,
        selector: &SelectorVector,
        accumulator: &mut [u8],
        acc_words: &mut Vec<u64>,
    );
}

/// The byte-wise reference kernel — the oracle every other kernel is pinned
/// against.
#[derive(Debug, Clone, Copy)]
pub struct ScalarKernel;

impl ScanKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn xor_select(
        &self,
        records: &[u8],
        record_size: usize,
        selector: &SelectorVector,
        accumulator: &mut [u8],
        _acc_words: &mut Vec<u64>,
    ) {
        xor_select_scalar(records, record_size, selector, accumulator);
    }
}

/// The historical 64-bit path: one `u64` per operation for record sizes
/// that are multiples of 8, byte-wise otherwise. The `hotpath` bench's
/// regression baseline.
#[derive(Debug, Clone, Copy)]
pub struct WideKernel;

impl ScanKernel for WideKernel {
    fn name(&self) -> &'static str {
        "wide"
    }

    fn xor_select(
        &self,
        records: &[u8],
        record_size: usize,
        selector: &SelectorVector,
        accumulator: &mut [u8],
        acc_words: &mut Vec<u64>,
    ) {
        if record_size.is_multiple_of(8) {
            xor_select_wide_with(records, record_size, selector, accumulator, acc_words);
        } else {
            xor_select_scalar(records, record_size, selector, accumulator);
        }
    }
}

/// The unrolled multi-word kernel.
///
/// Records of up to [`MAX_REGISTER_WORDS`] whole words keep the entire
/// accumulator in registers across the whole scan (no accumulator
/// loads/stores per record — the dominant win over [`WideKernel`], which
/// round-trips every accumulator word through memory per record); larger
/// records XOR in unrolled 8-word groups. A record size that is not a
/// multiple of 8 is split into its aligned word prefix plus a ≤7-byte tail
/// packed into one extra `u64`, so odd sizes (33-byte records as much as
/// the paper's 40-byte ones) still take the word path.
#[derive(Debug, Clone, Copy)]
pub struct UnrolledKernel;

/// Largest number of whole 8-byte words per record for which
/// [`UnrolledKernel`] keeps the full accumulator in registers.
pub const MAX_REGISTER_WORDS: usize = 8;

impl ScanKernel for UnrolledKernel {
    fn name(&self) -> &'static str {
        "unrolled"
    }

    fn xor_select(
        &self,
        records: &[u8],
        record_size: usize,
        selector: &SelectorVector,
        accumulator: &mut [u8],
        acc_words: &mut Vec<u64>,
    ) {
        check_shapes(records, record_size, selector, accumulator);
        match record_size / 8 {
            0 => scan_registers::<0>(records, record_size, selector, accumulator),
            1 => scan_registers::<1>(records, record_size, selector, accumulator),
            2 => scan_registers::<2>(records, record_size, selector, accumulator),
            3 => scan_registers::<3>(records, record_size, selector, accumulator),
            4 => scan_registers::<4>(records, record_size, selector, accumulator),
            5 => scan_registers::<5>(records, record_size, selector, accumulator),
            6 => scan_registers::<6>(records, record_size, selector, accumulator),
            7 => scan_registers::<7>(records, record_size, selector, accumulator),
            8 => scan_registers::<8>(records, record_size, selector, accumulator),
            _ => scan_unrolled_large(records, record_size, selector, accumulator, acc_words),
        }
    }
}

/// Loads up to 7 tail bytes as a little-endian `u64` (upper bytes zero).
#[inline]
fn load_tail(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(buf)
}

/// Stores the low `bytes.len()` bytes of `word` back into `bytes`.
#[inline]
fn store_tail(word: u64, bytes: &mut [u8]) {
    let len = bytes.len();
    bytes.copy_from_slice(&word.to_le_bytes()[..len]);
}

#[inline]
fn load_word(bytes: &[u8], word: usize) -> u64 {
    u64::from_le_bytes(
        bytes[word * 8..word * 8 + 8]
            .try_into()
            .expect("8-byte chunk"),
    )
}

/// Register-resident scan for records of `W` whole words plus an optional
/// tail: the accumulator never leaves registers between records, so each
/// selector-bit check costs `W` loads + `W` XORs and nothing else.
fn scan_registers<const W: usize>(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
) {
    debug_assert_eq!(record_size / 8, W);
    let tail = record_size - W * 8;
    let mut acc = [0u64; W];
    for (word, slot) in acc.iter_mut().enumerate() {
        *slot = load_word(accumulator, word);
    }
    let mut acc_tail = load_tail(&accumulator[W * 8..]);

    for (word_index, &selector_word) in selector.words().iter().enumerate() {
        // All-zero selector words — 64 unselected records — cost one branch.
        if selector_word == 0 {
            continue;
        }
        let mut remaining = selector_word;
        while remaining != 0 {
            let bit = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            let start = (word_index * 64 + bit) * record_size;
            let record = &records[start..start + record_size];
            // Fixed-length word region, so the per-word loads bounds-check
            // against the constant `W * 8` and fold away.
            let word_bytes = &record[..W * 8];
            for (word, slot) in acc.iter_mut().enumerate() {
                *slot ^= load_word(word_bytes, word);
            }
            if tail != 0 {
                acc_tail ^= load_tail(&record[W * 8..]);
            }
        }
    }

    for (word, slot) in acc.iter().enumerate() {
        accumulator[word * 8..word * 8 + 8].copy_from_slice(&slot.to_le_bytes());
    }
    if tail != 0 {
        store_tail(acc_tail, &mut accumulator[W * 8..]);
    }
}

/// Unrolled scan for records larger than [`MAX_REGISTER_WORDS`] words: the
/// aligned prefix is XORed in 8-word groups (each group's loads issued
/// back to back before any accumulator store), the sub-group remainder one
/// word at a time, and the tail as one packed word.
fn scan_unrolled_large(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
    acc_words: &mut Vec<u64>,
) {
    let whole_words = record_size / 8;
    let tail = record_size % 8;
    acc_words.clear();
    acc_words.resize(whole_words, 0);
    for (word, slot) in acc_words.iter_mut().enumerate() {
        *slot = load_word(accumulator, word);
    }
    let mut acc_tail = load_tail(&accumulator[whole_words * 8..]);

    for (word_index, &selector_word) in selector.words().iter().enumerate() {
        if selector_word == 0 {
            continue;
        }
        let mut remaining = selector_word;
        while remaining != 0 {
            let bit = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            let start = (word_index * 64 + bit) * record_size;
            let record = &records[start..start + record_size];
            let mut acc_groups = acc_words.chunks_exact_mut(8);
            let mut record_groups = record[..whole_words * 8].chunks_exact(64);
            for (acc_group, record_group) in (&mut acc_groups).zip(&mut record_groups) {
                for (word, slot) in acc_group.iter_mut().enumerate() {
                    *slot ^= load_word(record_group, word);
                }
            }
            let record_rest = record_groups.remainder();
            for (word, slot) in acc_groups.into_remainder().iter_mut().enumerate() {
                *slot ^= load_word(record_rest, word);
            }
            if tail != 0 {
                acc_tail ^= load_tail(&record[whole_words * 8..]);
            }
        }
    }

    for (chunk, slot) in accumulator.chunks_exact_mut(8).zip(acc_words.iter()) {
        chunk.copy_from_slice(&slot.to_le_bytes());
    }
    if tail != 0 {
        store_tail(acc_tail, &mut accumulator[whole_words * 8..]);
    }
}

/// Which [`ScanKernel`] a backend scans with — a runtime policy, like the
/// engine's shard placement: schemes and call sites never change, only the
/// dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Self-benchmarked fastest kernel for this host ([`best_kernel`]).
    #[default]
    Auto,
    /// Force the byte-wise reference kernel.
    Scalar,
    /// Force the historical one-`u64` wide kernel.
    Wide,
    /// Force the unrolled multi-word kernel.
    Unrolled,
}

impl KernelChoice {
    /// The kernel this choice dispatches to.
    #[must_use]
    pub fn resolve(self) -> &'static dyn ScanKernel {
        match self {
            KernelChoice::Auto => best_kernel(),
            KernelChoice::Scalar => &ScalarKernel,
            KernelChoice::Wide => &WideKernel,
            KernelChoice::Unrolled => &UnrolledKernel,
        }
    }

    /// Parses a choice from its config spelling
    /// (`auto|scalar|wide|unrolled`, case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<KernelChoice> {
        match name.to_ascii_lowercase().as_str() {
            "auto" => Some(KernelChoice::Auto),
            "scalar" => Some(KernelChoice::Scalar),
            "wide" => Some(KernelChoice::Wide),
            "unrolled" => Some(KernelChoice::Unrolled),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            KernelChoice::Auto => "auto",
            KernelChoice::Scalar => "scalar",
            KernelChoice::Wide => "wide",
            KernelChoice::Unrolled => "unrolled",
        };
        f.write_str(name)
    }
}

/// Every registered scan kernel, scalar oracle first.
#[must_use]
pub fn kernels() -> &'static [&'static dyn ScanKernel] {
    &[&ScalarKernel, &WideKernel, &UnrolledKernel]
}

/// Looks a kernel up by its [`ScanKernel::name`].
#[must_use]
pub fn kernel_by_name(name: &str) -> Option<&'static dyn ScanKernel> {
    kernels()
        .iter()
        .copied()
        .find(|kernel| kernel.name().eq_ignore_ascii_case(name))
}

/// The fastest kernel for this host, picked once per process.
///
/// On first call every registered kernel is verified byte-identical to the
/// scalar oracle on a synthetic workload and then timed on it (the paper's
/// 40-byte records at ~50 % selector density); the fastest verified kernel
/// wins and the answer is memoised. The `IMPIR_SCAN_KERNEL` environment
/// variable (`scalar|wide|unrolled`) short-circuits the benchmark — useful
/// for A/B runs of bench bins that take no config; unknown names are
/// ignored. The self-benchmark scans ~1 MiB per kernel, so first use costs
/// well under a millisecond per candidate.
#[must_use]
pub fn best_kernel() -> &'static dyn ScanKernel {
    static BEST: OnceLock<&'static dyn ScanKernel> = OnceLock::new();
    *BEST.get_or_init(|| {
        if let Some(kernel) = std::env::var("IMPIR_SCAN_KERNEL")
            .ok()
            .and_then(|name| kernel_by_name(&name))
        {
            return kernel;
        }
        self_benchmark()
    })
}

/// Times every registered kernel on a synthetic workload and returns the
/// fastest one that matches the scalar oracle (ties go to the earlier
/// registration; the oracle itself always matches, so the result is never
/// empty).
fn self_benchmark() -> &'static dyn ScanKernel {
    const RECORDS: usize = 4096;
    const RECORD_SIZE: usize = 40;
    const REPS: usize = 3;

    // Deterministic pseudo-random workload without pulling in an RNG:
    // xorshift64* is plenty for a timing probe.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let records: Vec<u8> = (0..(RECORDS * RECORD_SIZE).div_ceil(8))
        .flat_map(|_| next().to_le_bytes())
        .take(RECORDS * RECORD_SIZE)
        .collect();
    let selector: SelectorVector = (0..RECORDS).map(|_| next() & 1 == 1).collect();

    let mut oracle = vec![0u8; RECORD_SIZE];
    xor_select_scalar(&records, RECORD_SIZE, &selector, &mut oracle);

    let mut best: &'static dyn ScanKernel = &ScalarKernel;
    let mut best_seconds = f64::INFINITY;
    let mut acc_words = Vec::new();
    for &kernel in kernels() {
        let mut accumulator = vec![0u8; RECORD_SIZE];
        kernel.xor_select(
            &records,
            RECORD_SIZE,
            &selector,
            &mut accumulator,
            &mut acc_words,
        );
        if accumulator != oracle {
            // Defence in depth: a kernel that diverges from the oracle is
            // never auto-selected (the proptests make this unreachable).
            continue;
        }
        let mut kernel_best = f64::INFINITY;
        for _ in 0..REPS {
            accumulator.fill(0);
            let started = std::time::Instant::now();
            kernel.xor_select(
                &records,
                RECORD_SIZE,
                &selector,
                &mut accumulator,
                &mut acc_words,
            );
            kernel_best = kernel_best.min(started.elapsed().as_secs_f64());
            std::hint::black_box(&accumulator);
        }
        if kernel_best < best_seconds {
            best_seconds = kernel_best;
            best = kernel;
        }
    }
    best
}

/// XORs every selected record of `records` into `accumulator` through the
/// dispatched kernel ([`best_kernel`]).
///
/// `records` must contain exactly `selector.len()` records of
/// `record_size` bytes; `accumulator` must be `record_size` bytes long.
///
/// # Panics
///
/// Panics if the slice sizes are inconsistent.
pub fn xor_select_into(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
) {
    let mut acc_words = Vec::new();
    xor_select_into_with(records, record_size, selector, accumulator, &mut acc_words);
}

/// [`xor_select_into`] with a caller-owned word scratch, so repeated scans
/// (one per query of a batch) reuse the same accumulator words instead of
/// allocating per call.
///
/// # Panics
///
/// Panics if the slice sizes are inconsistent.
pub fn xor_select_into_with(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
    acc_words: &mut Vec<u64>,
) {
    check_shapes(records, record_size, selector, accumulator);
    best_kernel().xor_select(records, record_size, selector, accumulator, acc_words);
}

/// Byte-wise reference implementation of the selector-weighted XOR.
///
/// # Panics
///
/// Panics if the slice sizes are inconsistent.
pub fn xor_select_scalar(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
) {
    check_shapes(records, record_size, selector, accumulator);
    for index in 0..selector.len() {
        if selector.get(index) {
            let start = index * record_size;
            for (acc, byte) in accumulator
                .iter_mut()
                .zip(&records[start..start + record_size])
            {
                *acc ^= *byte;
            }
        }
    }
}

/// 64-bit-lane implementation: records whose size is a multiple of 8 bytes
/// are XORed eight bytes at a time — the historical fast path, kept as the
/// [`WideKernel`] baseline the unrolled kernel is benchmarked against.
///
/// # Panics
///
/// Panics if the slice sizes are inconsistent or `record_size` is not a
/// multiple of 8.
pub fn xor_select_wide(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
) {
    let mut acc_words = Vec::new();
    xor_select_wide_with(records, record_size, selector, accumulator, &mut acc_words);
}

/// [`xor_select_wide`] with the word accumulator hoisted out into a
/// caller-owned scratch: `acc_words` is cleared and refilled, keeping its
/// capacity, so a scan loop reusing one scratch allocates nothing per call
/// in the steady state.
///
/// # Panics
///
/// Panics if the slice sizes are inconsistent or `record_size` is not a
/// multiple of 8.
pub fn xor_select_wide_with(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
    acc_words: &mut Vec<u64>,
) {
    check_shapes(records, record_size, selector, accumulator);
    assert!(
        record_size.is_multiple_of(8),
        "wide path requires record sizes that are multiples of 8 bytes"
    );
    let words_per_record = record_size / 8;
    acc_words.clear();
    acc_words.resize(words_per_record, 0);
    for (word, chunk) in acc_words.iter_mut().zip(accumulator.chunks_exact(8)) {
        *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }

    // Walk the packed selector words and only touch records with set bits —
    // on average half the records, exactly like Algorithm 1's
    // `if v[j] = 1 then t_i ← t_i ⊕ D_d[j]`.
    for (word_index, &selector_word) in selector.words().iter().enumerate() {
        if selector_word == 0 {
            continue;
        }
        let mut remaining = selector_word;
        while remaining != 0 {
            let bit = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            let record_index = word_index * 64 + bit;
            let start = record_index * record_size;
            let record = &records[start..start + record_size];
            for (acc, chunk) in acc_words.iter_mut().zip(record.chunks_exact(8)) {
                *acc ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
        }
    }

    for (chunk, word) in accumulator.chunks_exact_mut(8).zip(acc_words.iter()) {
        chunk.copy_from_slice(&word.to_le_bytes());
    }
}

/// Merges a set of per-chunk partial results into a single record by XOR —
/// the second stage of the parallel reduction (Algorithm 1's `MasterXOR`
/// on a DPU, the host-side aggregation of per-DPU subresults, and the
/// merge of [`crate::server::cpu::CpuPirServer`]'s per-thread scan chunks).
///
/// # Panics
///
/// Panics if the partials do not all have length `record_size`.
#[must_use]
pub fn xor_reduce(partials: &[Vec<u8>], record_size: usize) -> Vec<u8> {
    let mut accumulator = vec![0u8; record_size];
    for partial in partials {
        assert_eq!(
            partial.len(),
            record_size,
            "partial result has the wrong record size"
        );
        for (acc, byte) in accumulator.iter_mut().zip(partial) {
            *acc ^= *byte;
        }
    }
    accumulator
}

/// XORs `other` into `accumulator` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_in_place(accumulator: &mut [u8], other: &[u8]) {
    assert_eq!(accumulator.len(), other.len(), "length mismatch");
    for (acc, byte) in accumulator.iter_mut().zip(other) {
        *acc ^= *byte;
    }
}

fn check_shapes(
    records: &[u8],
    record_size: usize,
    selector: &SelectorVector,
    accumulator: &mut [u8],
) {
    assert!(record_size > 0, "record size must be non-zero");
    assert_eq!(
        records.len(),
        selector.len() * record_size,
        "records buffer does not match selector length"
    );
    assert_eq!(
        accumulator.len(),
        record_size,
        "accumulator must be one record long"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_records(count: usize, record_size: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count * record_size).map(|_| rng.gen()).collect()
    }

    /// Selector patterns every kernel must agree on: empty, full, sparse
    /// (one bit per word, so word-skipping paths exercise both arms) and
    /// pseudo-random.
    fn selector_patterns(count: usize, seed: u64) -> Vec<(&'static str, SelectorVector)> {
        let mut rng = StdRng::seed_from_u64(seed);
        vec![
            ("all-zero", SelectorVector::zeros(count)),
            ("all-one", (0..count).map(|_| true).collect()),
            ("sparse", (0..count).map(|i| i % 64 == 63).collect()),
            ("random", (0..count).map(|_| rng.gen()).collect()),
        ]
    }

    fn oracle(records: &[u8], record_size: usize, selector: &SelectorVector) -> Vec<u8> {
        let mut accumulator = vec![0u8; record_size];
        xor_select_scalar(records, record_size, selector, &mut accumulator);
        accumulator
    }

    #[test]
    fn every_kernel_matches_the_oracle_across_geometries() {
        // Record sizes straddling every dispatch boundary: sub-word, exact
        // words, word+tail, the register/unrolled crossover at 64 bytes,
        // and a large record with both a group remainder and a tail.
        for record_size in [1usize, 2, 7, 8, 9, 16, 33, 40, 64, 65, 72, 100, 257] {
            let count = 200;
            let records = random_records(count, record_size, record_size as u64);
            for (pattern, selector) in selector_patterns(count, 7) {
                let expected = oracle(&records, record_size, &selector);
                for &kernel in kernels() {
                    let mut accumulator = vec![0u8; record_size];
                    let mut acc_words = Vec::new();
                    kernel.xor_select(
                        &records,
                        record_size,
                        &selector,
                        &mut accumulator,
                        &mut acc_words,
                    );
                    assert_eq!(
                        accumulator,
                        expected,
                        "kernel={} record_size={record_size} pattern={pattern}",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_accumulate_into_nonzero_accumulators() {
        // The contract is `accumulator ^= scan`, not `accumulator = scan`.
        let record_size = 33;
        let records = random_records(100, record_size, 5);
        let selector: SelectorVector = (0..100).map(|i| i % 3 == 0).collect();
        let mut expected = vec![0x5a; record_size];
        xor_select_scalar(&records, record_size, &selector, &mut expected);
        for &kernel in kernels() {
            let mut accumulator = vec![0x5a; record_size];
            let mut acc_words = Vec::new();
            kernel.xor_select(
                &records,
                record_size,
                &selector,
                &mut accumulator,
                &mut acc_words,
            );
            assert_eq!(accumulator, expected, "kernel={}", kernel.name());
        }
    }

    #[test]
    fn best_kernel_is_registered_and_correct() {
        let best = best_kernel();
        assert!(kernels().iter().any(|kernel| kernel.name() == best.name()));
        let records = random_records(128, 40, 9);
        let selector: SelectorVector = (0..128).map(|i| i % 2 == 0).collect();
        let expected = oracle(&records, 40, &selector);
        let mut accumulator = vec![0u8; 40];
        let mut acc_words = Vec::new();
        best.xor_select(&records, 40, &selector, &mut accumulator, &mut acc_words);
        assert_eq!(accumulator, expected);
    }

    #[test]
    fn kernel_choice_round_trips_names() {
        for choice in [
            KernelChoice::Auto,
            KernelChoice::Scalar,
            KernelChoice::Wide,
            KernelChoice::Unrolled,
        ] {
            assert_eq!(KernelChoice::parse(&choice.to_string()), Some(choice));
        }
        assert_eq!(
            KernelChoice::parse("UNROLLED"),
            Some(KernelChoice::Unrolled)
        );
        assert_eq!(KernelChoice::parse("avx512"), None);
        assert_eq!(KernelChoice::default(), KernelChoice::Auto);
        assert_eq!(KernelChoice::Scalar.resolve().name(), "scalar");
        assert_eq!(KernelChoice::Wide.resolve().name(), "wide");
        assert_eq!(KernelChoice::Unrolled.resolve().name(), "unrolled");
    }

    #[test]
    fn kernel_by_name_finds_every_registered_kernel() {
        for &kernel in kernels() {
            let found = kernel_by_name(kernel.name()).expect("registered");
            assert_eq!(found.name(), kernel.name());
        }
        assert!(kernel_by_name("no-such-kernel").is_none());
    }

    #[test]
    fn wide_and_scalar_agree() {
        let records = random_records(200, 32, 1);
        let selector: SelectorVector = (0..200).map(|i| i % 5 < 2).collect();
        let mut scalar = vec![0u8; 32];
        let mut wide = vec![0u8; 32];
        xor_select_scalar(&records, 32, &selector, &mut scalar);
        xor_select_wide(&records, 32, &selector, &mut wide);
        assert_eq!(scalar, wide);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch_across_calls() {
        // One scratch carried across scans of different record sizes must
        // produce the same results as fresh allocation per call.
        let mut scratch = Vec::new();
        for (count, record_size, seed) in [(64usize, 32usize, 1u64), (100, 8, 2), (30, 48, 3)] {
            let records = random_records(count, record_size, seed);
            let selector: SelectorVector = (0..count).map(|i| i % 3 != 0).collect();
            let mut reused = vec![0u8; record_size];
            let mut fresh = vec![0u8; record_size];
            xor_select_into_with(&records, record_size, &selector, &mut reused, &mut scratch);
            xor_select_into(&records, record_size, &selector, &mut fresh);
            assert_eq!(reused, fresh, "record_size={record_size}");
        }
    }

    #[test]
    fn dispatch_handles_odd_record_sizes() {
        let records = random_records(50, 7, 2);
        let selector: SelectorVector = (0..50).map(|i| i % 2 == 0).collect();
        let mut via_dispatch = vec![0u8; 7];
        let mut via_scalar = vec![0u8; 7];
        xor_select_into(&records, 7, &selector, &mut via_dispatch);
        xor_select_scalar(&records, 7, &selector, &mut via_scalar);
        assert_eq!(via_dispatch, via_scalar);
    }

    #[test]
    fn empty_selector_leaves_accumulator_unchanged() {
        let selector = SelectorVector::zeros(16);
        let records = random_records(16, 8, 3);
        let mut accumulator = vec![0xaa; 8];
        xor_select_into(&records, 8, &selector, &mut accumulator);
        assert_eq!(accumulator, vec![0xaa; 8]);
    }

    #[test]
    fn one_hot_selector_returns_that_record() {
        let records = random_records(64, 16, 4);
        let mut selector = SelectorVector::zeros(64);
        selector.set(37, true);
        let mut accumulator = vec![0u8; 16];
        xor_select_into(&records, 16, &selector, &mut accumulator);
        assert_eq!(accumulator, &records[37 * 16..38 * 16]);
    }

    #[test]
    fn xor_reduce_combines_partials() {
        let partials = vec![vec![0b1010u8, 0], vec![0b0110u8, 1], vec![0b0001u8, 1]];
        assert_eq!(xor_reduce(&partials, 2), vec![0b1101, 0]);
        assert_eq!(xor_reduce(&[], 3), vec![0, 0, 0]);
    }

    #[test]
    fn xor_in_place_is_xor() {
        let mut acc = vec![1u8, 2, 3];
        xor_in_place(&mut acc, &[1, 1, 1]);
        assert_eq!(acc, vec![0, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn shape_mismatch_panics() {
        let selector = SelectorVector::zeros(4);
        let mut acc = vec![0u8; 8];
        xor_select_into(&[0u8; 8], 8, &selector, &mut acc);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn kernel_shape_mismatch_panics() {
        let selector = SelectorVector::zeros(4);
        let mut acc = vec![0u8; 8];
        let mut acc_words = Vec::new();
        UnrolledKernel.xor_select(&[0u8; 8], 8, &selector, &mut acc, &mut acc_words);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_every_kernel_matches_scalar(
            count in 1usize..300,
            record_size in 1usize..=257,
            density in 0u8..=4,
            seed in any::<u64>(),
        ) {
            let records = random_records(count, record_size, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
            let selector: SelectorVector = match density {
                0 => SelectorVector::zeros(count),
                1 => (0..count).map(|_| true).collect(),
                2 => (0..count).map(|i| i % 61 == 0).collect(),
                _ => (0..count).map(|_| rng.gen()).collect(),
            };
            let expected = oracle(&records, record_size, &selector);
            let mut acc_words = Vec::new();
            for &kernel in kernels() {
                let mut accumulator = vec![0u8; record_size];
                kernel.xor_select(
                    &records,
                    record_size,
                    &selector,
                    &mut accumulator,
                    &mut acc_words,
                );
                prop_assert_eq!(
                    &accumulator,
                    &expected,
                    "kernel={} record_size={}",
                    kernel.name(),
                    record_size
                );
            }
        }

        #[test]
        fn prop_kernels_agree_on_offset_chunks(
            count in 65usize..300,
            record_size in 1usize..64,
            offset in 1usize..64,
            seed in any::<u64>(),
        ) {
            // The threaded scan hands each worker a record-range chunk whose
            // selector slice starts at an arbitrary offset; every kernel
            // must agree with the oracle on such unaligned sub-scans.
            let offset = offset.min(count - 1);
            let chunk_records = count - offset;
            let records = random_records(count, record_size, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x0ff5e7);
            let selector: SelectorVector = (0..count).map(|_| rng.gen()).collect();
            let chunk = &records[offset * record_size..];
            let chunk_selector = selector.slice(offset, chunk_records);
            let expected = oracle(chunk, record_size, &chunk_selector);
            let mut acc_words = Vec::new();
            for &kernel in kernels() {
                let mut accumulator = vec![0u8; record_size];
                kernel.xor_select(
                    chunk,
                    record_size,
                    &chunk_selector,
                    &mut accumulator,
                    &mut acc_words,
                );
                prop_assert_eq!(&accumulator, &expected, "kernel={}", kernel.name());
            }
        }

        #[test]
        fn prop_wide_matches_scalar(
            count in 1usize..300,
            words_per_record in 1usize..6,
            seed in any::<u64>(),
        ) {
            let record_size = 8 * words_per_record;
            let records = random_records(count, record_size, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
            let selector: SelectorVector = (0..count).map(|_| rng.gen()).collect();
            let mut scalar = vec![0u8; record_size];
            let mut wide = vec![0u8; record_size];
            xor_select_scalar(&records, record_size, &selector, &mut scalar);
            xor_select_wide(&records, record_size, &selector, &mut wide);
            prop_assert_eq!(scalar, wide);
        }

        #[test]
        fn prop_xor_select_is_linear(
            count in 1usize..120,
            seed in any::<u64>(),
        ) {
            // xor_select(a ⊕ b) == xor_select(a) ⊕ xor_select(b): the scan is
            // linear in the selector, the property PIR correctness rests on.
            let record_size = 16;
            let records = random_records(count, record_size, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
            let a: SelectorVector = (0..count).map(|_| rng.gen()).collect();
            let b: SelectorVector = (0..count).map(|_| rng.gen()).collect();
            let mut a_xor_b = a.clone();
            a_xor_b.xor_assign(&b);

            let mut out_a = vec![0u8; record_size];
            let mut out_b = vec![0u8; record_size];
            let mut out_ab = vec![0u8; record_size];
            xor_select_into(&records, record_size, &a, &mut out_a);
            xor_select_into(&records, record_size, &b, &mut out_b);
            xor_select_into(&records, record_size, &a_xor_b, &mut out_ab);
            xor_in_place(&mut out_a, &out_b);
            prop_assert_eq!(out_a, out_ab);
        }
    }
}
