//! Transport-agnostic access to a PIR server: *where* a server runs is a
//! deployment policy, not a type.
//!
//! [`PirTransport`] is the client-side boundary of the service layer. A
//! scheme ([`crate::scheme::TwoServerPir`],
//! [`crate::multi_server::NServerNaivePir`]) holds `Box<dyn PirTransport>`
//! per server and cannot tell the implementations apart:
//!
//! * [`LocalTransport`] wraps a [`QueryEngine`] in-process — the
//!   single-process object graph every deployment used before the service
//!   layer existed, now just one policy among several;
//! * [`TcpTransport`] speaks the [`crate::wire`] format over `std::net` to
//!   an `impir-server` process (connection-per-session), so the same
//!   client code drives in-process, mixed, or fully remote deployments.
//!
//! Every transport reports the **wire cost** of each batch
//! ([`TransportBatch::upload_bytes`] / [`TransportBatch::download_bytes`]):
//! the TCP transport counts the bytes it actually moved, and the local
//! transport reports what the same batch *would* cost on the wire, so cost
//! accounting is deployment-independent too.

use std::io::Write as _;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Instant;

use impir_dpf::SelectorVector;

use crate::batch::{UpdatableBackend, UpdateOutcome};
use crate::engine::QueryEngine;
use crate::error::PirError;
use crate::protocol::{QueryShare, ServerResponse};
use crate::server::phases::PhaseBreakdown;
use crate::wire::{
    self, io_error, protocol_error, query_batch_frame_bytes, read_frame,
    response_batch_frame_bytes, write_frame, Frame, WIRE_VERSION,
};

pub use crate::wire::ServerInfo;

/// The result of one query batch through a transport: the responses plus
/// deployment-independent accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportBatch {
    /// Responses, in the same order as the submitted shares.
    pub responses: Vec<ServerResponse>,
    /// The server's database epoch when the batch executed. A scheme
    /// querying replicated servers checks these match across its
    /// transports (see [`crate::scheme::TwoServerPir::query_batch`]).
    pub epoch: u64,
    /// Wall time observed at the transport boundary, in seconds — for
    /// remote transports this includes the network round trip.
    pub wall_seconds: f64,
    /// Wall time the server itself measured for the batch, in seconds.
    pub server_wall_seconds: f64,
    /// The server's per-phase accounting of the batch.
    pub phase_totals: PhaseBreakdown,
    /// Bytes of request traffic for this batch (wire framing included).
    pub upload_bytes: u64,
    /// Bytes of response traffic for this batch (wire framing included).
    pub download_bytes: u64,
}

impl TransportBatch {
    /// Throughput in queries per second, based on the transport-boundary
    /// wall time.
    #[must_use]
    pub fn throughput_qps(&self) -> f64 {
        self.responses.len() as f64 / self.wall_seconds
    }

    /// Simulated-hardware batch latency: phases that ran on the simulated
    /// PIM use their modelled time, host phases their measured time.
    #[must_use]
    pub fn hybrid_seconds(&self) -> f64 {
        self.phase_totals.total_hybrid_seconds()
    }
}

/// The result of one selector scan through a transport.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResult {
    /// The record-sized XOR subresult.
    pub payload: Vec<u8>,
    /// The server's database epoch when the scan executed. An n-server
    /// query is `n` sequential scans; callers cross-check these so an
    /// update landing between scans is detected (see
    /// [`crate::multi_server::NServerNaivePir::query`]).
    pub epoch: u64,
    /// The server's per-phase accounting of the scan.
    pub phases: PhaseBreakdown,
}

/// Client-side handle to one PIR server, wherever it runs.
///
/// Methods take `&mut self`: a transport is a session, used by one logical
/// client at a time (servers multiplex many sessions internally).
pub trait PirTransport: Send {
    /// The served database's geometry and current shard/epoch state.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] on transport failures.
    fn server_info(&mut self) -> Result<ServerInfo, PirError>;

    /// Submits a batch of query shares and returns the responses (in
    /// order) with wire-cost and timing accounting.
    ///
    /// # Errors
    ///
    /// Propagates server-side errors (domain mismatches, backend
    /// failures) and returns [`PirError::Protocol`] on transport failures.
    fn query_batch(&mut self, shares: &[QueryShare]) -> Result<TransportBatch, PirError>;

    /// Scans one full-domain linear selector share (the n-server naive
    /// scheme) and returns the XOR subresult with its epoch and phase
    /// accounting.
    ///
    /// # Errors
    ///
    /// As for [`PirTransport::query_batch`].
    fn scan_selector(&mut self, selector: &SelectorVector) -> Result<ScanResult, PirError>;

    /// Applies a bulk update batch (§3.3) to the server's database.
    ///
    /// # Errors
    ///
    /// Propagates the engine's all-or-nothing validation errors and
    /// returns [`PirError::Protocol`] on transport failures.
    fn apply_updates(&mut self, updates: &[(u64, Vec<u8>)]) -> Result<UpdateOutcome, PirError>;
}

// ---------------------------------------------------------------------------
// In-process transport.
// ---------------------------------------------------------------------------

/// A [`PirTransport`] wrapping a [`QueryEngine`] in the same process — no
/// sockets, no serialization, but the same interface and the same wire
/// cost accounting as a remote server.
#[derive(Debug)]
pub struct LocalTransport<S: UpdatableBackend + Send + Sync> {
    engine: QueryEngine<S>,
}

impl<S: UpdatableBackend + Send + Sync> LocalTransport<S> {
    /// Wraps an engine.
    #[must_use]
    pub fn new(engine: QueryEngine<S>) -> Self {
        LocalTransport { engine }
    }

    /// The wrapped engine.
    #[must_use]
    pub fn engine(&self) -> &QueryEngine<S> {
        &self.engine
    }

    /// Mutable access to the wrapped engine.
    pub fn engine_mut(&mut self) -> &mut QueryEngine<S> {
        &mut self.engine
    }

    /// Unwraps the transport back into its engine.
    #[must_use]
    pub fn into_engine(self) -> QueryEngine<S> {
        self.engine
    }
}

impl<S: UpdatableBackend + Send + Sync> PirTransport for LocalTransport<S> {
    fn server_info(&mut self) -> Result<ServerInfo, PirError> {
        Ok(ServerInfo {
            num_records: self.engine.num_records(),
            record_size: self.engine.record_size(),
            shard_count: self.engine.shard_count(),
            epoch: self.engine.database_epoch(),
        })
    }

    fn query_batch(&mut self, shares: &[QueryShare]) -> Result<TransportBatch, PirError> {
        let started = Instant::now();
        let outcome = self.engine.execute_batch(shares)?;
        Ok(TransportBatch {
            epoch: self.engine.database_epoch(),
            wall_seconds: started.elapsed().as_secs_f64(),
            server_wall_seconds: outcome.wall_seconds,
            phase_totals: outcome.phase_totals,
            upload_bytes: query_batch_frame_bytes(shares) as u64,
            download_bytes: response_batch_frame_bytes(&outcome.responses) as u64,
            responses: outcome.responses,
        })
    }

    fn scan_selector(&mut self, selector: &SelectorVector) -> Result<ScanResult, PirError> {
        let (payload, phases) = self.engine.scan_selector(selector)?;
        Ok(ScanResult {
            payload,
            epoch: self.engine.database_epoch(),
            phases,
        })
    }

    fn apply_updates(&mut self, updates: &[(u64, Vec<u8>)]) -> Result<UpdateOutcome, PirError> {
        self.engine.apply_updates(updates)
    }
}

// ---------------------------------------------------------------------------
// TCP transport.
// ---------------------------------------------------------------------------

/// A [`PirTransport`] speaking the [`crate::wire`] format over a TCP
/// connection (connection-per-session: one `TcpTransport` is one server
/// session; drop it to close the session).
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    info: ServerInfo,
    uploaded_bytes: u64,
    downloaded_bytes: u64,
}

impl TcpTransport {
    /// Connects to an `impir-server` at `addr` and performs the
    /// magic/version handshake.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] if the connection cannot be
    /// established, the peer does not speak the protocol, or the versions
    /// disagree.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, PirError> {
        let stream =
            TcpStream::connect(addr).map_err(|err| io_error("connecting to server", &err))?;
        let _ = stream.set_nodelay(true);
        let mut transport = TcpTransport {
            stream,
            info: ServerInfo {
                num_records: 0,
                record_size: 0,
                shard_count: 0,
                epoch: 0,
            },
            uploaded_bytes: 0,
            downloaded_bytes: 0,
        };
        let reply = transport.request(&Frame::Hello {
            version: WIRE_VERSION,
        })?;
        match reply {
            Frame::HelloAck { version, info } => {
                if version != WIRE_VERSION {
                    return Err(protocol_error(format!(
                        "server speaks wire version {version}, this client speaks {WIRE_VERSION}"
                    )));
                }
                transport.info = info;
                Ok(transport)
            }
            other => Err(unexpected_frame("HelloAck", &other)),
        }
    }

    /// The server info captured at the handshake (refreshed by
    /// [`PirTransport::server_info`]).
    #[must_use]
    pub fn cached_info(&self) -> ServerInfo {
        self.info
    }

    /// Total request bytes this session has put on the wire.
    #[must_use]
    pub fn uploaded_bytes(&self) -> u64 {
        self.uploaded_bytes
    }

    /// Total response bytes this session has taken off the wire.
    #[must_use]
    pub fn downloaded_bytes(&self) -> u64 {
        self.downloaded_bytes
    }

    /// Bounds how long this session waits for any single reply (and for
    /// socket writes). `None` — the default — waits indefinitely, which is
    /// right for trusted servers running arbitrarily large batches; set a
    /// timeout when a wedged server must surface as
    /// [`PirError::Protocol`] instead of blocking the client forever.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] if the socket rejects the timeout
    /// (e.g. a zero duration).
    pub fn set_io_timeout(&mut self, timeout: Option<std::time::Duration>) -> Result<(), PirError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|err| io_error("setting read timeout", &err))?;
        self.stream
            .set_write_timeout(timeout)
            .map_err(|err| io_error("setting write timeout", &err))
    }

    /// One request/response round trip. A [`Frame::Error`] reply is
    /// surfaced as [`PirError::Protocol`] carrying the server's message.
    fn request(&mut self, frame: &Frame) -> Result<Frame, PirError> {
        self.uploaded_bytes += write_frame(&mut self.stream, frame)? as u64;
        self.receive_reply()
    }

    /// Sends pre-encoded request bytes (the borrowed hot path — no owned
    /// frame built) and reads the reply.
    fn request_encoded(&mut self, encoded: &[u8]) -> Result<Frame, PirError> {
        self.stream
            .write_all(encoded)
            .map_err(|err| io_error("writing frame", &err))?;
        self.stream
            .flush()
            .map_err(|err| io_error("flushing frame", &err))?;
        self.uploaded_bytes += encoded.len() as u64;
        self.receive_reply()
    }

    fn receive_reply(&mut self) -> Result<Frame, PirError> {
        let (reply, taken) = read_frame(&mut self.stream)?;
        self.downloaded_bytes += taken as u64;
        if let Frame::Error { message } = reply {
            return Err(protocol_error(format!(
                "server rejected request: {message}"
            )));
        }
        Ok(reply)
    }
}

fn unexpected_frame(expected: &str, got: &Frame) -> PirError {
    protocol_error(format!("expected a {expected} frame, got {}", got.name()))
}

impl PirTransport for TcpTransport {
    fn server_info(&mut self) -> Result<ServerInfo, PirError> {
        match self.request(&Frame::InfoRequest)? {
            Frame::Info { info } => {
                self.info = info;
                Ok(info)
            }
            other => Err(unexpected_frame("Info", &other)),
        }
    }

    fn query_batch(&mut self, shares: &[QueryShare]) -> Result<TransportBatch, PirError> {
        let encoded = wire::encode_query_batch(shares)?;
        let upload_bytes = encoded.len() as u64;
        let started = Instant::now();
        let reply = self.request_encoded(&encoded)?;
        match reply {
            Frame::ResponseBatch {
                epoch,
                wall_seconds,
                phases,
                responses,
            } => {
                if responses.len() != shares.len() {
                    return Err(protocol_error(format!(
                        "server answered {} responses to {} shares",
                        responses.len(),
                        shares.len()
                    )));
                }
                self.info.epoch = epoch;
                Ok(TransportBatch {
                    epoch,
                    wall_seconds: started.elapsed().as_secs_f64(),
                    server_wall_seconds: wall_seconds,
                    phase_totals: phases,
                    upload_bytes,
                    download_bytes: response_batch_frame_bytes(&responses) as u64,
                    responses,
                })
            }
            other => Err(unexpected_frame("ResponseBatch", &other)),
        }
    }

    fn scan_selector(&mut self, selector: &SelectorVector) -> Result<ScanResult, PirError> {
        let encoded = wire::encode_selector_scan(selector)?;
        let reply = self.request_encoded(&encoded)?;
        match reply {
            Frame::SelectorResult {
                epoch,
                payload,
                phases,
            } => {
                self.info.epoch = epoch;
                Ok(ScanResult {
                    payload,
                    epoch,
                    phases,
                })
            }
            other => Err(unexpected_frame("SelectorResult", &other)),
        }
    }

    fn apply_updates(&mut self, updates: &[(u64, Vec<u8>)]) -> Result<UpdateOutcome, PirError> {
        let encoded = wire::encode_update_batch(updates)?;
        let reply = self.request_encoded(&encoded)?;
        match reply {
            Frame::UpdateAck { outcome } => {
                self.info.epoch = outcome.epoch;
                Ok(outcome)
            }
            other => Err(unexpected_frame("UpdateAck", &other)),
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Best-effort clean close; the server also handles abrupt
        // disconnects.
        if let Ok(encoded) = Frame::Goodbye.encode() {
            let _ = self.stream.write_all(&encoded);
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::engine::EngineConfig;
    use crate::server::cpu::{CpuPirServer, CpuServerConfig};
    use crate::shard::ShardedDatabase;
    use crate::PirClient;
    use std::sync::Arc;

    fn local(db: &Arc<Database>, shards: usize) -> LocalTransport<CpuPirServer> {
        let sharded = ShardedDatabase::uniform(db.clone(), shards).unwrap();
        let engine = QueryEngine::sharded(&sharded, EngineConfig::default(), |shard_db, _| {
            CpuPirServer::new(shard_db, CpuServerConfig::baseline())
        })
        .unwrap();
        LocalTransport::new(engine)
    }

    #[test]
    fn local_transport_reports_engine_info_and_wire_costs() {
        let db = Arc::new(Database::random(200, 16, 3).unwrap());
        let mut transport = local(&db, 2);
        let info = transport.server_info().unwrap();
        assert_eq!(info.num_records, 200);
        assert_eq!(info.record_size, 16);
        assert_eq!(info.shard_count, 2);
        assert_eq!(info.epoch, 0);

        let mut client = PirClient::new(200, 16, 1).unwrap();
        let (shares, _) = client.generate_batch(&[5, 150, 99]).unwrap();
        let batch = transport.query_batch(&shares).unwrap();
        assert_eq!(batch.responses.len(), 3);
        assert_eq!(batch.upload_bytes, query_batch_frame_bytes(&shares) as u64);
        assert_eq!(
            batch.download_bytes,
            response_batch_frame_bytes(&batch.responses) as u64
        );
        assert_eq!(batch.epoch, 0);

        let outcome = transport.apply_updates(&[(5, vec![0xEE; 16])]).unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(transport.server_info().unwrap().epoch, 1);
    }

    #[test]
    fn local_transport_scan_matches_database() {
        let db = Arc::new(Database::random(96, 8, 5).unwrap());
        let mut transport = local(&db, 3);
        let selector: SelectorVector = (0..96).map(|i| i % 7 == 0).collect();
        let scan = transport.scan_selector(&selector).unwrap();
        assert_eq!(scan.payload, db.xor_select(&selector));
        assert_eq!(scan.epoch, 0);
    }

    #[test]
    fn tcp_connect_to_nothing_is_a_protocol_error() {
        // Port 1 on localhost is essentially never listening.
        let result = TcpTransport::connect("127.0.0.1:1");
        assert!(matches!(result, Err(PirError::Protocol { .. })));
    }
}
