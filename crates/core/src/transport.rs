//! Transport-agnostic access to a PIR server: *where* a server runs is a
//! deployment policy, not a type.
//!
//! [`PirTransport`] is the client-side boundary of the service layer. A
//! scheme ([`crate::scheme::TwoServerPir`],
//! [`crate::multi_server::NServerNaivePir`]) holds `Box<dyn PirTransport>`
//! per server and cannot tell the implementations apart:
//!
//! * [`LocalTransport`] wraps a [`QueryEngine`] in-process — the
//!   single-process object graph every deployment used before the service
//!   layer existed, now just one policy among several;
//! * [`TcpTransport`] speaks the [`crate::wire`] format over `std::net` to
//!   an `impir-server` process (connection-per-session), so the same
//!   client code drives in-process, mixed, or fully remote deployments;
//! * [`MuxConnection`] multiplexes many logical sessions over **one** TCP
//!   connection using [`Frame::Mux`] session ids — each
//!   [`MuxConnection::session`] is a [`MuxSession`], a full
//!   [`PirTransport`] of its own. Sessions pipeline: a background reader
//!   thread routes each reply to the session that asked, so concurrent
//!   sessions never head-of-line block on one another's round trips. The
//!   router uses this for its backend legs (one socket per replica
//!   instead of one per client session).
//!
//! Every transport reports the **wire cost** of each batch
//! ([`TransportBatch::upload_bytes`] / [`TransportBatch::download_bytes`]):
//! the TCP transport counts the bytes it actually moved, and the local
//! transport reports what the same batch *would* cost on the wire, so cost
//! accounting is deployment-independent too.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use impir_dpf::SelectorVector;

use crate::batch::{UpdatableBackend, UpdateOutcome};
use crate::engine::QueryEngine;
use crate::error::PirError;
use crate::journal::UpdateBatch;
use crate::protocol::{QueryShare, ServerResponse};
use crate::server::phases::PhaseBreakdown;
use crate::wire::{
    self, protocol_error, query_batch_frame_bytes, response_batch_frame_bytes, Frame, WIRE_VERSION,
};

pub use crate::wire::{EpochInfo, ServerInfo};

/// The result of one query batch through a transport: the responses plus
/// deployment-independent accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportBatch {
    /// Responses, in the same order as the submitted shares.
    pub responses: Vec<ServerResponse>,
    /// The server's database epoch when the batch executed. A scheme
    /// querying replicated servers checks these match across its
    /// transports (see [`crate::scheme::TwoServerPir::query_batch`]).
    pub epoch: u64,
    /// Wall time observed at the transport boundary, in seconds — for
    /// remote transports this includes the network round trip.
    pub wall_seconds: f64,
    /// Wall time the server itself measured for the batch, in seconds.
    pub server_wall_seconds: f64,
    /// The server's per-phase accounting of the batch.
    pub phase_totals: PhaseBreakdown,
    /// Bytes of request traffic for this batch (wire framing included).
    pub upload_bytes: u64,
    /// Bytes of response traffic for this batch (wire framing included).
    pub download_bytes: u64,
}

impl TransportBatch {
    /// Throughput in queries per second, based on the transport-boundary
    /// wall time.
    #[must_use]
    pub fn throughput_qps(&self) -> f64 {
        self.responses.len() as f64 / self.wall_seconds
    }

    /// Simulated-hardware batch latency: phases that ran on the simulated
    /// PIM use their modelled time, host phases their measured time.
    #[must_use]
    pub fn hybrid_seconds(&self) -> f64 {
        self.phase_totals.total_hybrid_seconds()
    }
}

/// The result of one selector scan through a transport.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResult {
    /// The record-sized XOR subresult.
    pub payload: Vec<u8>,
    /// The server's database epoch when the scan executed. An n-server
    /// query is `n` sequential scans; callers cross-check these so an
    /// update landing between scans is detected (see
    /// [`crate::multi_server::NServerNaivePir::query`]).
    pub epoch: u64,
    /// The server's per-phase accounting of the scan.
    pub phases: PhaseBreakdown,
}

/// Client-side handle to one PIR server, wherever it runs.
///
/// Methods take `&mut self`: a transport is a session, used by one logical
/// client at a time (servers multiplex many sessions internally).
pub trait PirTransport: Send {
    /// The served database's geometry and current shard/epoch state.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] on transport failures.
    fn server_info(&mut self) -> Result<ServerInfo, PirError>;

    /// Submits a batch of query shares and returns the responses (in
    /// order) with wire-cost and timing accounting.
    ///
    /// # Errors
    ///
    /// Propagates server-side errors (domain mismatches, backend
    /// failures) and returns [`PirError::Protocol`] on transport failures.
    fn query_batch(&mut self, shares: &[QueryShare]) -> Result<TransportBatch, PirError>;

    /// Scans one full-domain linear selector share (the n-server naive
    /// scheme) and returns the XOR subresult with its epoch and phase
    /// accounting.
    ///
    /// # Errors
    ///
    /// As for [`PirTransport::query_batch`].
    fn scan_selector(&mut self, selector: &SelectorVector) -> Result<ScanResult, PirError>;

    /// Applies a bulk update batch (§3.3) to the server's database.
    ///
    /// # Errors
    ///
    /// Propagates the engine's all-or-nothing validation errors and
    /// returns [`PirError::Protocol`] on transport failures.
    fn apply_updates(&mut self, updates: &[(u64, Vec<u8>)]) -> Result<UpdateOutcome, PirError>;

    /// The server's database epoch and update-journal coverage — what a
    /// replicated scheme consults when its replicas disagree, to decide
    /// which one lags and whether the lag is still replayable.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] on transport failures.
    fn epoch_info(&mut self) -> Result<EpochInfo, PirError>;

    /// The update batches a replica stuck at `from_epoch` must apply, in
    /// order, to reach this server's epoch (see
    /// [`crate::journal::UpdateJournal::replay_from`]). Implementations
    /// with bounded messages (TCP) may gather the replay over several
    /// round trips, but always return the full set.
    ///
    /// # Errors
    ///
    /// * [`PirError::JournalTruncated`] when the server's journal no
    ///   longer reaches back to `from_epoch`;
    /// * [`PirError::Protocol`] on transport failures or when `from_epoch`
    ///   is ahead of the server.
    fn replay_updates(&mut self, from_epoch: u64) -> Result<Vec<UpdateBatch>, PirError>;
}

// ---------------------------------------------------------------------------
// In-process transport.
// ---------------------------------------------------------------------------

/// A [`PirTransport`] wrapping a [`QueryEngine`] in the same process — no
/// sockets, no serialization, but the same interface and the same wire
/// cost accounting as a remote server.
#[derive(Debug)]
pub struct LocalTransport<S: UpdatableBackend + Send + Sync> {
    engine: QueryEngine<S>,
}

impl<S: UpdatableBackend + Send + Sync> LocalTransport<S> {
    /// Wraps an engine.
    #[must_use]
    pub fn new(engine: QueryEngine<S>) -> Self {
        LocalTransport { engine }
    }

    /// The wrapped engine.
    #[must_use]
    pub fn engine(&self) -> &QueryEngine<S> {
        &self.engine
    }

    /// Mutable access to the wrapped engine.
    pub fn engine_mut(&mut self) -> &mut QueryEngine<S> {
        &mut self.engine
    }

    /// Unwraps the transport back into its engine.
    #[must_use]
    pub fn into_engine(self) -> QueryEngine<S> {
        self.engine
    }
}

impl<S: UpdatableBackend + Send + Sync> PirTransport for LocalTransport<S> {
    fn server_info(&mut self) -> Result<ServerInfo, PirError> {
        Ok(ServerInfo {
            num_records: self.engine.num_records(),
            record_size: self.engine.record_size(),
            shard_count: self.engine.shard_count(),
            epoch: self.engine.database_epoch(),
        })
    }

    fn query_batch(&mut self, shares: &[QueryShare]) -> Result<TransportBatch, PirError> {
        let started = Instant::now();
        let outcome = self.engine.execute_batch(shares)?;
        Ok(TransportBatch {
            epoch: self.engine.database_epoch(),
            wall_seconds: started.elapsed().as_secs_f64(),
            server_wall_seconds: outcome.wall_seconds,
            phase_totals: outcome.phase_totals,
            upload_bytes: query_batch_frame_bytes(shares) as u64,
            download_bytes: response_batch_frame_bytes(&outcome.responses) as u64,
            responses: outcome.responses,
        })
    }

    fn scan_selector(&mut self, selector: &SelectorVector) -> Result<ScanResult, PirError> {
        let (payload, phases) = self.engine.scan_selector(selector)?;
        Ok(ScanResult {
            payload,
            epoch: self.engine.database_epoch(),
            phases,
        })
    }

    fn apply_updates(&mut self, updates: &[(u64, Vec<u8>)]) -> Result<UpdateOutcome, PirError> {
        self.engine.apply_updates(updates)
    }

    fn epoch_info(&mut self) -> Result<EpochInfo, PirError> {
        Ok(self.engine.epoch_info())
    }

    fn replay_updates(&mut self, from_epoch: u64) -> Result<Vec<UpdateBatch>, PirError> {
        self.engine.replay_updates(from_epoch)
    }
}

// ---------------------------------------------------------------------------
// TCP transport.
// ---------------------------------------------------------------------------

/// How a [`TcpTransport`] behaves when an operation's connection fails:
/// how many attempts an **idempotent** operation gets, how the waits
/// between attempts grow, and how long any single socket read/write may
/// block.
///
/// Only idempotent operations (queries, scans, info, epoch info, replay)
/// are retried — re-running them cannot change server state. An update
/// batch is **never** blindly re-sent: once its request bytes may have
/// reached the server, a retry could apply the batch twice (bumping the
/// epoch twice and desynchronising replicas). A failed update surfaces to
/// the caller, where [`crate::scheme::TwoServerPir::apply_updates`]
/// resolves the ambiguity through epoch comparison instead of resending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts an idempotent operation gets (at least 1). The
    /// default of 1 means no retries — exactly the pre-policy behavior.
    pub max_attempts: u32,
    /// Wait before the first retry; doubles per retry up to
    /// [`RetryPolicy::max_backoff`].
    pub initial_backoff: Duration,
    /// Upper bound on the exponential backoff.
    pub max_backoff: Duration,
    /// Per-attempt bound on any single socket read or write. `None` —
    /// the default — waits indefinitely, which is right for trusted
    /// servers running arbitrarily large batches; set a timeout when a
    /// wedged server must surface as [`PirError::Protocol`] instead of
    /// blocking the client forever.
    pub io_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            io_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy for fault-tolerant deployments: a few quick retries with
    /// exponential backoff and a per-attempt I/O timeout.
    #[must_use]
    pub fn resilient() -> Self {
        RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(250),
            io_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// How one low-level exchange failed: `Io` broke the connection (the
/// transport reconnects and, for idempotent operations, retries), `Fatal`
/// is a definitive answer (server rejection, malformed or unexpected
/// reply, version mismatch) that no retry can change.
enum Failure {
    Io(String),
    Fatal(PirError),
}

/// A [`PirTransport`] speaking the [`crate::wire`] format over a TCP
/// connection (connection-per-session: one `TcpTransport` is one server
/// session; drop it to close the session).
///
/// The transport owns a [`RetryPolicy`]: when the connection breaks it
/// reconnects and re-handshakes, and idempotent operations are retried
/// with exponential backoff. Every transport error names the peer and the
/// operation, so one replica's failure is attributable in a fleet's logs.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    /// Resolved peer addresses, kept for reconnection.
    peer: Vec<SocketAddr>,
    /// The peer as given by the caller, for error messages.
    peer_label: String,
    policy: RetryPolicy,
    /// Set when the connection is known dead (an I/O failure or a framing
    /// desync); the next operation reconnects before sending.
    broken: bool,
    info: ServerInfo,
    uploaded_bytes: u64,
    downloaded_bytes: u64,
}

impl TcpTransport {
    /// Connects to an `impir-server` at `addr` and performs the
    /// magic/version handshake, with the default (no-retry)
    /// [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] if the connection cannot be
    /// established, the peer does not speak the protocol, or the versions
    /// disagree.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, PirError> {
        Self::connect_with(addr, RetryPolicy::default())
    }

    /// [`TcpTransport::connect`] with an explicit [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// As for [`TcpTransport::connect`].
    pub fn connect_with(addr: impl ToSocketAddrs, policy: RetryPolicy) -> Result<Self, PirError> {
        let peer: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|err| protocol_error(format!("resolving server address: {err}")))?
            .collect();
        let Some(first) = peer.first() else {
            return Err(protocol_error(
                "server address resolved to no socket addresses",
            ));
        };
        let peer_label = first.to_string();
        let stream = TcpStream::connect(&peer[..])
            .map_err(|err| protocol_error(format!("connecting to server {peer_label}: {err}")))?;
        let mut transport = TcpTransport {
            stream,
            peer,
            peer_label,
            policy,
            broken: false,
            info: ServerInfo {
                num_records: 0,
                record_size: 0,
                shard_count: 0,
                epoch: 0,
            },
            uploaded_bytes: 0,
            downloaded_bytes: 0,
        };
        transport.configure_stream()?;
        transport
            .handshake()
            .map_err(|failure| transport.to_error("handshaking", failure))?;
        Ok(transport)
    }

    /// The server info captured at the handshake (refreshed by
    /// [`PirTransport::server_info`]).
    #[must_use]
    pub fn cached_info(&self) -> ServerInfo {
        self.info
    }

    /// The peer address errors and logs refer to.
    #[must_use]
    pub fn peer(&self) -> &str {
        &self.peer_label
    }

    /// Total request bytes this session has put on the wire (handshakes
    /// and reconnects included).
    #[must_use]
    pub fn uploaded_bytes(&self) -> u64 {
        self.uploaded_bytes
    }

    /// Total response bytes this session has taken off the wire.
    #[must_use]
    pub fn downloaded_bytes(&self) -> u64 {
        self.downloaded_bytes
    }

    /// Replaces the transport's [`RetryPolicy`]. The per-attempt I/O
    /// timeout applies from the next operation.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] if the socket rejects the timeout
    /// (e.g. a zero duration).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) -> Result<(), PirError> {
        self.policy = policy;
        self.configure_stream()
    }

    /// Bounds how long this session waits for any single socket read or
    /// write (shorthand for updating the policy's `io_timeout`).
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] if the socket rejects the timeout
    /// (e.g. a zero duration).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), PirError> {
        self.policy.io_timeout = timeout;
        self.configure_stream()
    }

    /// Applies the policy's socket options to the current stream.
    fn configure_stream(&mut self) -> Result<(), PirError> {
        let _ = self.stream.set_nodelay(true);
        self.stream
            .set_read_timeout(self.policy.io_timeout)
            .map_err(|err| self.operation_error("setting read timeout", &err.to_string()))?;
        self.stream
            .set_write_timeout(self.policy.io_timeout)
            .map_err(|err| self.operation_error("setting write timeout", &err.to_string()))
    }

    /// "op to peer: detail" — every error this transport produces names
    /// the peer and the operation, so multi-replica failures are
    /// attributable.
    fn operation_error(&self, op: &str, detail: &str) -> PirError {
        protocol_error(format!("{op} to server {}: {detail}", self.peer_label))
    }

    fn to_error(&self, op: &str, failure: Failure) -> PirError {
        match failure {
            Failure::Io(detail) => self.operation_error(op, &detail),
            Failure::Fatal(err) => err,
        }
    }

    /// Dials the peer again and re-handshakes, replacing the dead stream.
    fn reconnect(&mut self) -> Result<(), Failure> {
        let stream = TcpStream::connect(&self.peer[..])
            .map_err(|err| Failure::Io(format!("reconnecting: {err}")))?;
        self.stream = stream;
        self.configure_stream().map_err(Failure::Fatal)?;
        self.handshake()
    }

    /// The magic/version exchange on a fresh stream.
    fn handshake(&mut self) -> Result<(), Failure> {
        self.broken = false;
        let encoded = Frame::Hello {
            version: WIRE_VERSION,
        }
        .encode()
        .map_err(Failure::Fatal)?;
        let reply = self.exchange(&encoded)?;
        match reply {
            Frame::HelloAck { version, info } => {
                if version != WIRE_VERSION {
                    self.broken = true;
                    return Err(Failure::Fatal(self.operation_error(
                        "handshaking",
                        &format!(
                            "server speaks wire version {version}, this client speaks \
                             {WIRE_VERSION}"
                        ),
                    )));
                }
                self.info = info;
                Ok(())
            }
            other => Err(self.unexpected_frame("HelloAck", &other)),
        }
    }

    /// One request/response exchange on the current stream. I/O failures
    /// and framing desyncs mark the connection broken; a [`Frame::Error`]
    /// reply leaves it usable.
    fn exchange(&mut self, encoded: &[u8]) -> Result<Frame, Failure> {
        if let Err(err) = self.stream.write_all(encoded) {
            self.broken = true;
            return Err(Failure::Io(format!("writing request: {err}")));
        }
        if let Err(err) = self.stream.flush() {
            self.broken = true;
            return Err(Failure::Io(format!("flushing request: {err}")));
        }
        self.uploaded_bytes += encoded.len() as u64;
        self.receive_reply()
    }

    /// Reads one reply frame, classifying failures: socket errors are
    /// retryable [`Failure::Io`]; malformed frames are [`Failure::Fatal`]
    /// (the stream is desynchronized — also marked broken so the next
    /// operation reconnects); a [`Frame::Error`] reply is fatal but leaves
    /// the connection usable.
    fn receive_reply(&mut self) -> Result<Frame, Failure> {
        let mut prefix = [0u8; 4];
        if let Err(err) = self.stream.read_exact(&mut prefix) {
            self.broken = true;
            return Err(Failure::Io(format!("reading reply length: {err}")));
        }
        let length = u32::from_le_bytes(prefix) as usize;
        if length == 0 || length > wire::MAX_FRAME_BYTES {
            self.broken = true;
            return Err(Failure::Fatal(self.operation_error(
                "reading reply",
                &format!(
                    "frame length {length} outside (0, {}]",
                    wire::MAX_FRAME_BYTES
                ),
            )));
        }
        let mut buf = vec![0u8; 4 + length];
        buf[..4].copy_from_slice(&prefix);
        if let Err(err) = self.stream.read_exact(&mut buf[4..]) {
            self.broken = true;
            return Err(Failure::Io(format!("reading reply body: {err}")));
        }
        self.downloaded_bytes += buf.len() as u64;
        let reply = Frame::decode(&buf).map_err(|err| {
            // The stream is desynchronized from here on: reconnect next.
            self.broken = true;
            Failure::Fatal(self.operation_error("decoding reply", &err.to_string()))
        })?;
        if let Frame::Error { message } = reply {
            return Err(Failure::Fatal(protocol_error(format!(
                "server {} rejected request: {message}",
                self.peer_label
            ))));
        }
        if let Frame::Overloaded { retry_after_ms } = reply {
            // Typed load shedding: nothing ran and the connection stays
            // usable — surface the backoff hint instead of retrying
            // blindly into the same saturation.
            return Err(Failure::Fatal(PirError::Overloaded { retry_after_ms }));
        }
        Ok(reply)
    }

    fn unexpected_frame(&self, expected: &str, got: &Frame) -> Failure {
        Failure::Fatal(protocol_error(format!(
            "expected a {expected} frame from server {}, got {}",
            self.peer_label,
            got.name()
        )))
    }

    /// Runs one **idempotent** request to completion under the retry
    /// policy: reconnects a broken connection, retries I/O failures with
    /// exponential backoff, and surfaces fatal failures immediately.
    fn idempotent_request(&mut self, op: &str, encoded: &[u8]) -> Result<Frame, PirError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut backoff = self.policy.initial_backoff;
        let mut attempt = 0;
        loop {
            attempt += 1;
            let result = if self.broken {
                self.reconnect().and_then(|()| self.exchange(encoded))
            } else {
                self.exchange(encoded)
            };
            match result {
                Ok(reply) => return Ok(reply),
                Err(Failure::Fatal(err)) => return Err(err),
                Err(Failure::Io(detail)) => {
                    if attempt >= attempts {
                        return Err(self.operation_error(
                            op,
                            &format!("{detail} (after {attempt} attempt(s))"),
                        ));
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.policy.max_backoff);
                }
            }
        }
    }

    /// Runs one **non-idempotent** request: reconnecting a known-broken
    /// connection *before* sending is retried (nothing has been sent yet,
    /// so it cannot duplicate anything), but once the request bytes may
    /// have left this host, any failure is final — the server may have
    /// applied the update even though the ack was lost, and only the
    /// scheme layer can resolve that ambiguity (by epoch comparison, see
    /// [`crate::scheme::TwoServerPir::apply_updates`]).
    fn update_request(&mut self, op: &str, encoded: &[u8]) -> Result<Frame, PirError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut backoff = self.policy.initial_backoff;
        let mut attempt = 0;
        while self.broken {
            attempt += 1;
            match self.reconnect() {
                Ok(()) => break,
                Err(Failure::Fatal(err)) => return Err(err),
                Err(Failure::Io(detail)) => {
                    if attempt >= attempts {
                        return Err(self.operation_error(
                            op,
                            &format!("{detail} (after {attempt} reconnect attempt(s))"),
                        ));
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.policy.max_backoff);
                }
            }
        }
        self.exchange(encoded)
            .map_err(|failure| self.to_error(op, failure))
    }
}

impl PirTransport for TcpTransport {
    fn server_info(&mut self) -> Result<ServerInfo, PirError> {
        let encoded = Frame::InfoRequest.encode()?;
        match self.idempotent_request("requesting server info", &encoded)? {
            Frame::Info { info } => {
                self.info = info;
                Ok(info)
            }
            other => Err(self.to_error(
                "requesting server info",
                self.unexpected_frame("Info", &other),
            )),
        }
    }

    fn query_batch(&mut self, shares: &[QueryShare]) -> Result<TransportBatch, PirError> {
        let encoded = wire::encode_query_batch(shares)?;
        let upload_bytes = encoded.len() as u64;
        let started = Instant::now();
        let reply = self.idempotent_request("querying batch", &encoded)?;
        match reply {
            Frame::ResponseBatch {
                epoch,
                wall_seconds,
                phases,
                responses,
            } => {
                if responses.len() != shares.len() {
                    return Err(self.operation_error(
                        "querying batch",
                        &format!(
                            "server answered {} responses to {} shares",
                            responses.len(),
                            shares.len()
                        ),
                    ));
                }
                self.info.epoch = epoch;
                Ok(TransportBatch {
                    epoch,
                    wall_seconds: started.elapsed().as_secs_f64(),
                    server_wall_seconds: wall_seconds,
                    phase_totals: phases,
                    upload_bytes,
                    download_bytes: response_batch_frame_bytes(&responses) as u64,
                    responses,
                })
            }
            other => Err(self.to_error(
                "querying batch",
                self.unexpected_frame("ResponseBatch", &other),
            )),
        }
    }

    fn scan_selector(&mut self, selector: &SelectorVector) -> Result<ScanResult, PirError> {
        let encoded = wire::encode_selector_scan(selector)?;
        let reply = self.idempotent_request("scanning selector", &encoded)?;
        match reply {
            Frame::SelectorResult {
                epoch,
                payload,
                phases,
            } => {
                self.info.epoch = epoch;
                Ok(ScanResult {
                    payload,
                    epoch,
                    phases,
                })
            }
            other => Err(self.to_error(
                "scanning selector",
                self.unexpected_frame("SelectorResult", &other),
            )),
        }
    }

    fn apply_updates(&mut self, updates: &[(u64, Vec<u8>)]) -> Result<UpdateOutcome, PirError> {
        let encoded = wire::encode_update_batch(updates)?;
        let reply = self.update_request("applying updates", &encoded)?;
        match reply {
            Frame::UpdateAck { outcome } => {
                self.info.epoch = outcome.epoch;
                Ok(outcome)
            }
            other => Err(self.to_error(
                "applying updates",
                self.unexpected_frame("UpdateAck", &other),
            )),
        }
    }

    fn epoch_info(&mut self) -> Result<EpochInfo, PirError> {
        let encoded = Frame::EpochInfoRequest.encode()?;
        match self.idempotent_request("requesting epoch info", &encoded)? {
            Frame::EpochInfo { info } => {
                self.info.epoch = info.current_epoch;
                Ok(info)
            }
            other => Err(self.to_error(
                "requesting epoch info",
                self.unexpected_frame("EpochInfo", &other),
            )),
        }
    }

    fn replay_updates(&mut self, from_epoch: u64) -> Result<Vec<UpdateBatch>, PirError> {
        // The server bounds every reply frame, so a large retained lag
        // arrives as a *prefix* of the replay per request. Loop, advancing
        // the requested epoch by the batches received, until the server's
        // epoch at entry is reached or a reply comes back empty (caught
        // up). Pinning the target at entry bounds the loop — a concurrent
        // writer cannot extend it indefinitely; its tail batches are
        // picked up by the caller's next resync round.
        let target = self.epoch_info()?.current_epoch;
        let mut next_epoch = from_epoch;
        let mut all: Vec<UpdateBatch> = Vec::new();
        loop {
            let encoded = Frame::UpdateReplayRequest {
                from_epoch: next_epoch,
            }
            .encode()?;
            let batches = match self.idempotent_request("requesting update replay", &encoded)? {
                Frame::UpdateReplay { batches } => batches,
                Frame::JournalTruncated {
                    from_epoch,
                    oldest_replayable,
                    current_epoch,
                } => {
                    return Err(PirError::JournalTruncated {
                        from_epoch,
                        oldest_replayable,
                        current_epoch,
                    });
                }
                other => {
                    return Err(self.to_error(
                        "requesting update replay",
                        self.unexpected_frame("UpdateReplay", &other),
                    ));
                }
            };
            if batches.is_empty() {
                break;
            }
            next_epoch += batches.len() as u64;
            all.extend(batches);
            if next_epoch >= target {
                break;
            }
        }
        Ok(all)
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Best-effort clean close; the server also handles abrupt
        // disconnects.
        if let Ok(encoded) = Frame::Goodbye.encode() {
            let _ = self.stream.write_all(&encoded);
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

// ---------------------------------------------------------------------------
// Multiplexed TCP transport: many logical sessions, one connection.
// ---------------------------------------------------------------------------

/// State shared between a [`MuxConnection`], its [`MuxSession`]s and the
/// background reader thread.
struct MuxShared {
    /// The write half (a `try_clone` of the reader's stream); one frame
    /// at a time goes out under this lock, so concurrent sessions never
    /// interleave bytes inside a frame.
    writer: Mutex<TcpStream>,
    /// One in-flight request per session id; the reader thread completes
    /// them as [`Frame::Mux`] replies arrive, in whatever order the
    /// server answers.
    pending: Mutex<HashMap<u32, mpsc::Sender<Result<Frame, PirError>>>>,
    /// Set on any I/O failure or framing desync: the connection is dead
    /// and every subsequent request fails fast. A `MuxConnection` never
    /// reconnects itself — its owner (e.g. the router) replaces it, so
    /// sessions keep connection-per-session's explicit failure model.
    broken: AtomicBool,
    /// The peer as given by the caller, for error messages.
    peer_label: String,
    /// Total request bytes this connection has put on the wire.
    uploaded: AtomicU64,
    /// Total response bytes this connection has taken off the wire.
    downloaded: AtomicU64,
}

impl MuxShared {
    /// Marks the connection dead and fails every in-flight request with
    /// an error naming `reason`.
    fn fail(&self, reason: &str) {
        self.broken.store(true, Ordering::SeqCst);
        let mut pending = self.pending.lock().expect("mux pending lock poisoned");
        for (_, tx) in pending.drain() {
            let _ = tx.send(Err(protocol_error(format!(
                "multiplexed connection to server {} failed: {reason}",
                self.peer_label
            ))));
        }
    }
}

/// The reader half of a [`MuxConnection`]: blocks on the socket, routes
/// each [`Frame::Mux`] reply to the session that asked, and fails every
/// pending request when the connection dies (including the deliberate
/// shutdown `MuxConnection::drop` performs, which is what ends this
/// thread).
fn mux_reader_loop(mut stream: TcpStream, shared: &MuxShared) {
    loop {
        let (frame, taken) = match wire::read_frame(&mut stream) {
            Ok(read) => read,
            Err(err) => {
                shared.fail(&err.to_string());
                return;
            }
        };
        shared.downloaded.fetch_add(taken as u64, Ordering::Relaxed);
        match frame {
            Frame::Mux { session, frame } => {
                let sender = shared
                    .pending
                    .lock()
                    .expect("mux pending lock poisoned")
                    .remove(&session);
                match sender {
                    Some(tx) => {
                        // A dropped receiver (caller gave up) is fine;
                        // the reply is simply discarded.
                        let _ = tx.send(Ok(*frame));
                    }
                    None => {
                        // A reply for a session nobody is waiting on
                        // means the two ends disagree about the stream
                        // state — fail closed rather than guess.
                        shared.fail(&format!("reply for unknown session {session}"));
                        return;
                    }
                }
            }
            other => {
                shared.fail(&format!(
                    "unmuxed {} frame on a multiplexed connection",
                    other.name()
                ));
                return;
            }
        }
    }
}

/// One multiplexed TCP connection to an `impir-server`, carrying many
/// logical sessions (see the [module docs](self)). Create sessions with
/// [`MuxConnection::session`]; drop the connection to close every
/// session at once.
pub struct MuxConnection {
    shared: Arc<MuxShared>,
    reader: Option<std::thread::JoinHandle<()>>,
    /// Session-id allocator. Id 0 is reserved for the connection's root
    /// session (plain unwrapped frames), so allocation starts at 1.
    next_session: AtomicU32,
    info: ServerInfo,
}

impl std::fmt::Debug for MuxConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxConnection")
            .field("peer", &self.shared.peer_label)
            .field("broken", &self.shared.broken.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl MuxConnection {
    /// Connects and performs the (connection-level, unwrapped)
    /// magic/version handshake, then starts the reader thread.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] if the connection cannot be
    /// established, the peer does not speak the protocol, or the
    /// versions disagree.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, PirError> {
        Self::connect_with(addr, None)
    }

    /// [`MuxConnection::connect`] with a bound on any single socket
    /// *write* (reads stay unbounded: the reader thread legitimately
    /// blocks until the server has something to say).
    ///
    /// # Errors
    ///
    /// As for [`MuxConnection::connect`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        write_timeout: Option<Duration>,
    ) -> Result<Self, PirError> {
        let peer: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|err| protocol_error(format!("resolving server address: {err}")))?
            .collect();
        let Some(first) = peer.first() else {
            return Err(protocol_error(
                "server address resolved to no socket addresses",
            ));
        };
        let peer_label = first.to_string();
        let mut stream = TcpStream::connect(&peer[..])
            .map_err(|err| protocol_error(format!("connecting to server {peer_label}: {err}")))?;
        let _ = stream.set_nodelay(true);

        // Connection-level handshake, before any multiplexing: plain
        // Hello out, plain HelloAck back.
        let hello = Frame::Hello {
            version: WIRE_VERSION,
        }
        .encode()?;
        stream
            .write_all(&hello)
            .and_then(|()| stream.flush())
            .map_err(|err| {
                protocol_error(format!("handshaking with server {peer_label}: {err}"))
            })?;
        let (reply, taken) = wire::read_frame(&mut stream)?;
        let info = match reply {
            Frame::HelloAck { version, info } => {
                if version != WIRE_VERSION {
                    return Err(protocol_error(format!(
                        "server {peer_label} speaks wire version {version}, this client \
                         speaks {WIRE_VERSION}"
                    )));
                }
                info
            }
            other => {
                return Err(protocol_error(format!(
                    "expected a HelloAck frame from server {peer_label}, got {}",
                    other.name()
                )));
            }
        };

        let writer = stream.try_clone().map_err(|err| {
            protocol_error(format!("cloning stream to server {peer_label}: {err}"))
        })?;
        writer.set_write_timeout(write_timeout).map_err(|err| {
            protocol_error(format!(
                "setting write timeout to server {peer_label}: {err}"
            ))
        })?;
        let shared = Arc::new(MuxShared {
            writer: Mutex::new(writer),
            pending: Mutex::new(HashMap::new()),
            broken: AtomicBool::new(false),
            peer_label,
            uploaded: AtomicU64::new(hello.len() as u64),
            downloaded: AtomicU64::new(taken as u64),
        });
        let reader_shared = shared.clone();
        let reader = std::thread::Builder::new()
            .name("impir-mux-reader".to_string())
            .spawn(move || mux_reader_loop(stream, &reader_shared))
            .map_err(|err| protocol_error(format!("spawning mux reader thread: {err}")))?;
        Ok(MuxConnection {
            shared,
            reader: Some(reader),
            next_session: AtomicU32::new(1),
            info,
        })
    }

    /// Opens a new logical session on this connection. Purely local: the
    /// server learns of the session when its first frame arrives, and
    /// the session closes when the [`MuxSession`] drops (a muxed
    /// Goodbye) or the connection does.
    ///
    /// # Errors
    ///
    /// Returns [`PirError::Protocol`] when the connection is already
    /// known dead.
    pub fn session(&self) -> Result<MuxSession, PirError> {
        if self.is_broken() {
            return Err(protocol_error(format!(
                "multiplexed connection to server {} is broken",
                self.shared.peer_label
            )));
        }
        let session = self.next_session.fetch_add(1, Ordering::Relaxed);
        Ok(MuxSession {
            shared: self.shared.clone(),
            session,
            info: self.info,
        })
    }

    /// The server info captured at the connection handshake.
    #[must_use]
    pub fn cached_info(&self) -> ServerInfo {
        self.info
    }

    /// The peer address errors and logs refer to.
    #[must_use]
    pub fn peer(&self) -> &str {
        &self.shared.peer_label
    }

    /// Whether the connection is known dead (every further request on
    /// any of its sessions fails fast; the owner should replace it).
    #[must_use]
    pub fn is_broken(&self) -> bool {
        self.shared.broken.load(Ordering::SeqCst)
    }

    /// Total request bytes this connection has put on the wire, across
    /// all its sessions (handshake included).
    #[must_use]
    pub fn uploaded_bytes(&self) -> u64 {
        self.shared.uploaded.load(Ordering::Relaxed)
    }

    /// Total response bytes this connection has taken off the wire,
    /// across all its sessions (handshake included).
    #[must_use]
    pub fn downloaded_bytes(&self) -> u64 {
        self.shared.downloaded.load(Ordering::Relaxed)
    }
}

impl Drop for MuxConnection {
    fn drop(&mut self) {
        // Best-effort clean close of the root session, then a shutdown —
        // which is also what unblocks and ends the reader thread.
        if let Ok(mut writer) = self.shared.writer.lock() {
            if let Ok(encoded) = Frame::Goodbye.encode() {
                let _ = writer.write_all(&encoded);
            }
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// One logical session on a [`MuxConnection`] — a full [`PirTransport`]:
/// schemes and the router's per-client backend legs hold a `MuxSession`
/// exactly where they previously held a whole [`TcpTransport`].
pub struct MuxSession {
    shared: Arc<MuxShared>,
    session: u32,
    info: ServerInfo,
}

impl std::fmt::Debug for MuxSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxSession")
            .field("peer", &self.shared.peer_label)
            .field("session", &self.session)
            .finish_non_exhaustive()
    }
}

impl MuxSession {
    /// This session's id on the shared connection.
    #[must_use]
    pub fn session_id(&self) -> u32 {
        self.session
    }

    fn operation_error(&self, op: &str, detail: &str) -> PirError {
        protocol_error(format!(
            "{op} to server {} (session {}): {detail}",
            self.shared.peer_label, self.session
        ))
    }

    /// One muxed request/reply round trip. Unlike [`TcpTransport`] there
    /// are no retries here: a mux connection is shared, so recovery (a
    /// replacement connection) belongs to its owner.
    fn request(&mut self, op: &str, inner: Frame) -> Result<(Frame, u64), PirError> {
        if self.shared.broken.load(Ordering::SeqCst) {
            return Err(self.operation_error(op, "connection is broken"));
        }
        let encoded = Frame::Mux {
            session: self.session,
            frame: Box::new(inner),
        }
        .encode()?;
        let (tx, rx) = mpsc::channel();
        self.shared
            .pending
            .lock()
            .expect("mux pending lock poisoned")
            .insert(self.session, tx);
        {
            let mut writer = self.shared.writer.lock().expect("mux writer lock poisoned");
            if let Err(err) = writer.write_all(&encoded).and_then(|()| writer.flush()) {
                drop(writer);
                self.shared.fail(&format!("writing request: {err}"));
                return Err(self.operation_error(op, &format!("writing request: {err}")));
            }
        }
        let upload_bytes = encoded.len() as u64;
        self.shared
            .uploaded
            .fetch_add(upload_bytes, Ordering::Relaxed);
        let reply = match rx.recv() {
            Ok(Ok(reply)) => reply,
            Ok(Err(err)) => return Err(err),
            Err(_) => {
                return Err(self.operation_error(op, "connection closed before the reply arrived"))
            }
        };
        match reply {
            Frame::Error { message } => Err(protocol_error(format!(
                "server {} rejected request: {message}",
                self.shared.peer_label
            ))),
            Frame::Overloaded { retry_after_ms } => Err(PirError::Overloaded { retry_after_ms }),
            other => Ok((other, upload_bytes)),
        }
    }

    fn unexpected_frame(&self, op: &str, expected: &str, got: &Frame) -> PirError {
        self.operation_error(
            op,
            &format!("expected a {expected} frame, got {}", got.name()),
        )
    }
}

impl PirTransport for MuxSession {
    fn server_info(&mut self) -> Result<ServerInfo, PirError> {
        let op = "requesting server info";
        match self.request(op, Frame::InfoRequest)? {
            (Frame::Info { info }, _) => {
                self.info = info;
                Ok(info)
            }
            (other, _) => Err(self.unexpected_frame(op, "Info", &other)),
        }
    }

    fn query_batch(&mut self, shares: &[QueryShare]) -> Result<TransportBatch, PirError> {
        let op = "querying batch";
        let started = Instant::now();
        let request = Frame::QueryBatch {
            shares: shares.to_vec(),
        };
        match self.request(op, request)? {
            (
                Frame::ResponseBatch {
                    epoch,
                    wall_seconds,
                    phases,
                    responses,
                },
                upload_bytes,
            ) => {
                if responses.len() != shares.len() {
                    return Err(self.operation_error(
                        op,
                        &format!(
                            "server answered {} responses to {} shares",
                            responses.len(),
                            shares.len()
                        ),
                    ));
                }
                self.info.epoch = epoch;
                Ok(TransportBatch {
                    epoch,
                    wall_seconds: started.elapsed().as_secs_f64(),
                    server_wall_seconds: wall_seconds,
                    phase_totals: phases,
                    upload_bytes,
                    download_bytes: (response_batch_frame_bytes(&responses)
                        + wire::MUX_OVERHEAD_BYTES) as u64,
                    responses,
                })
            }
            (other, _) => Err(self.unexpected_frame(op, "ResponseBatch", &other)),
        }
    }

    fn scan_selector(&mut self, selector: &SelectorVector) -> Result<ScanResult, PirError> {
        let op = "scanning selector";
        let request = Frame::SelectorScan {
            selector: selector.clone(),
        };
        match self.request(op, request)? {
            (
                Frame::SelectorResult {
                    epoch,
                    payload,
                    phases,
                },
                _,
            ) => {
                self.info.epoch = epoch;
                Ok(ScanResult {
                    payload,
                    epoch,
                    phases,
                })
            }
            (other, _) => Err(self.unexpected_frame(op, "SelectorResult", &other)),
        }
    }

    fn apply_updates(&mut self, updates: &[(u64, Vec<u8>)]) -> Result<UpdateOutcome, PirError> {
        let op = "applying updates";
        let request = Frame::UpdateBatch {
            updates: updates.to_vec(),
        };
        match self.request(op, request)? {
            (Frame::UpdateAck { outcome }, _) => {
                self.info.epoch = outcome.epoch;
                Ok(outcome)
            }
            (other, _) => Err(self.unexpected_frame(op, "UpdateAck", &other)),
        }
    }

    fn epoch_info(&mut self) -> Result<EpochInfo, PirError> {
        let op = "requesting epoch info";
        match self.request(op, Frame::EpochInfoRequest)? {
            (Frame::EpochInfo { info }, _) => {
                self.info.epoch = info.current_epoch;
                Ok(info)
            }
            (other, _) => Err(self.unexpected_frame(op, "EpochInfo", &other)),
        }
    }

    fn replay_updates(&mut self, from_epoch: u64) -> Result<Vec<UpdateBatch>, PirError> {
        // Same chunked-prefix loop as TcpTransport::replay_updates: the
        // target epoch is pinned at entry so a concurrent writer cannot
        // extend the loop indefinitely.
        let op = "requesting update replay";
        let target = self.epoch_info()?.current_epoch;
        let mut next_epoch = from_epoch;
        let mut all: Vec<UpdateBatch> = Vec::new();
        loop {
            let request = Frame::UpdateReplayRequest {
                from_epoch: next_epoch,
            };
            let batches = match self.request(op, request)? {
                (Frame::UpdateReplay { batches }, _) => batches,
                (
                    Frame::JournalTruncated {
                        from_epoch,
                        oldest_replayable,
                        current_epoch,
                    },
                    _,
                ) => {
                    return Err(PirError::JournalTruncated {
                        from_epoch,
                        oldest_replayable,
                        current_epoch,
                    });
                }
                (other, _) => return Err(self.unexpected_frame(op, "UpdateReplay", &other)),
            };
            if batches.is_empty() {
                break;
            }
            next_epoch += batches.len() as u64;
            all.extend(batches);
            if next_epoch >= target {
                break;
            }
        }
        Ok(all)
    }
}

impl Drop for MuxSession {
    fn drop(&mut self) {
        // Best-effort muxed Goodbye so the server can retire this
        // logical session without waiting for the whole connection.
        if self.shared.broken.load(Ordering::SeqCst) {
            return;
        }
        let goodbye = Frame::Mux {
            session: self.session,
            frame: Box::new(Frame::Goodbye),
        };
        if let Ok(encoded) = goodbye.encode() {
            if let Ok(mut writer) = self.shared.writer.lock() {
                let _ = writer.write_all(&encoded);
                let _ = writer.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::engine::EngineConfig;
    use crate::server::cpu::{CpuPirServer, CpuServerConfig};
    use crate::shard::ShardedDatabase;
    use crate::PirClient;
    use std::sync::Arc;

    fn local(db: &Arc<Database>, shards: usize) -> LocalTransport<CpuPirServer> {
        let sharded = ShardedDatabase::uniform(db.clone(), shards).unwrap();
        let engine = QueryEngine::sharded(&sharded, EngineConfig::default(), |shard_db, _| {
            CpuPirServer::new(shard_db, CpuServerConfig::baseline())
        })
        .unwrap();
        LocalTransport::new(engine)
    }

    #[test]
    fn local_transport_reports_engine_info_and_wire_costs() {
        let db = Arc::new(Database::random(200, 16, 3).unwrap());
        let mut transport = local(&db, 2);
        let info = transport.server_info().unwrap();
        assert_eq!(info.num_records, 200);
        assert_eq!(info.record_size, 16);
        assert_eq!(info.shard_count, 2);
        assert_eq!(info.epoch, 0);

        let mut client = PirClient::new(200, 16, 1).unwrap();
        let (shares, _) = client.generate_batch(&[5, 150, 99]).unwrap();
        let batch = transport.query_batch(&shares).unwrap();
        assert_eq!(batch.responses.len(), 3);
        assert_eq!(batch.upload_bytes, query_batch_frame_bytes(&shares) as u64);
        assert_eq!(
            batch.download_bytes,
            response_batch_frame_bytes(&batch.responses) as u64
        );
        assert_eq!(batch.epoch, 0);

        let outcome = transport.apply_updates(&[(5, vec![0xEE; 16])]).unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(transport.server_info().unwrap().epoch, 1);
    }

    #[test]
    fn local_transport_scan_matches_database() {
        let db = Arc::new(Database::random(96, 8, 5).unwrap());
        let mut transport = local(&db, 3);
        let selector: SelectorVector = (0..96).map(|i| i % 7 == 0).collect();
        let scan = transport.scan_selector(&selector).unwrap();
        assert_eq!(scan.payload, db.xor_select(&selector));
        assert_eq!(scan.epoch, 0);
    }

    #[test]
    fn tcp_connect_to_nothing_is_a_protocol_error() {
        // Port 1 on localhost is essentially never listening.
        let result = TcpTransport::connect("127.0.0.1:1");
        assert!(matches!(result, Err(PirError::Protocol { .. })));
    }
}
