//! IM-PIR: in-memory (PIM-accelerated) multi-server private information
//! retrieval — the core contribution of the reproduced paper.
//!
//! # Protocol
//!
//! The library implements the full two-server PIR protocol of the paper's
//! §3 and Algorithm 1:
//!
//! 1. the client encodes its query index as a pair of DPF keys
//!    ([`client::PirClient`], step ➊);
//! 2. each server evaluates its key over the whole database domain on the
//!    host CPU using the subtree-parallel strategy of §3.2 (step ➋);
//! 3. the selector bits are scattered to the DPUs holding the preloaded
//!    database chunks (step ➌);
//! 4. every DPU runs the two-stage parallel-reduction `dpXOR` kernel over
//!    its chunk (step ➍), subresults are copied back (➎) and aggregated on
//!    the host (➏);
//! 5. the client XORs the two servers' responses to recover the record
//!    (step ➐).
//!
//! # Architecture: transport → engine → backend → substrate
//!
//! Execution is layered so that *deployment policy* (where a server runs,
//! how it is sharded and batched) lives apart from *data-plane mechanism*
//! (how one scan runs):
//!
//! * **transport** — the service layer's client-side boundary.
//!   Schemes ([`scheme::TwoServerPir`], [`multi_server::NServerNaivePir`])
//!   hold `Box<dyn `[`transport::PirTransport`]`>` per server, so "where
//!   the server runs" is a constructor argument, not a type:
//!   [`transport::LocalTransport`] wraps a [`engine::QueryEngine`]
//!   in-process, and [`transport::TcpTransport`] speaks the versioned
//!   [`wire`] format (length-prefixed little-endian frames, magic/version
//!   handshake, hard frame-size limits) to an `impir-server` process —
//!   which multiplexes many client sessions onto one shared engine,
//!   coalescing concurrent sessions' batches into shared engine waves.
//!   `TcpTransport` is failure-aware: a [`transport::RetryPolicy`] bounds
//!   reconnect/retry attempts with exponential backoff and per-attempt I/O
//!   timeouts, retrying only idempotent operations (an update whose ack is
//!   lost is never blindly resent — the scheme resolves its fate by epoch).
//!   Every answered batch carries the database epoch it executed against,
//!   so replicated deployments detect update/query interleavings that
//!   reached only one server; each engine also keeps a bounded
//!   [`journal::UpdateJournal`] of applied batches, and a lagging replica
//!   catches up automatically by replaying its missed epochs from its
//!   peer's journal over the wire ([`wire::Frame::UpdateReplayRequest`]).
//!   Only a journal that no longer reaches back far enough fails closed
//!   with an actionable resync error. The [`fault`] module provides the
//!   deterministic fault-injection harness (seed-scheduled transport
//!   faults, a frame-aware TCP fault proxy) that soaks this recovery path
//!   in `tests/fault_recovery.rs`.
//! * **engine** — [`engine::QueryEngine`] owns a [`shard::ShardedDatabase`]
//!   (contiguous record-range shards under a [`shard::ShardPlan`]) and
//!   drives the §3.4 batch pipeline: worker threads evaluate DPF keys over
//!   the full domain behind a bounded admission queue (backpressure), each
//!   shard scans its slice of every selector in parallel, and the
//!   XOR-linear merge reassembles responses with per-phase accounting.
//!   Every deployment in the workspace — [`scheme::TwoServerPir`],
//!   [`multi_server::NServerNaivePir`], the baselines and the benchmark
//!   harness — executes through this one layer.
//! * **planner** — *how* the engine is sharded is itself deployment policy:
//!   the [`capacity`] module sizes shards to backend capacity instead of
//!   splitting uniformly. Each backend declares a
//!   [`capacity::CapacityProfile`] (record capacity from its memory budget,
//!   scan bandwidth, wave width — the PIM server derives its profile from
//!   per-cluster MRAM and the timed simulator's cost model, via
//!   [`capacity::ProfiledBackend`] or the configs' declared-profile
//!   constructors), a [`capacity::ShardPlanner`] waterfills records over
//!   effective bandwidth under hard capacity caps (optionally calibrated by
//!   measured probe scans), and [`engine::QueryEngine::planned`] pairs the
//!   resulting non-uniform plan with per-shard backends — heterogeneous
//!   fleets included, since boxed trait-object backends plug in directly.
//!   [`engine::QueryEngine::shard_timings`] exposes predicted-vs-actual
//!   per-shard skew so a plan's quality is observable in production.
//!   And the plan is not frozen at build time: the [`rebalance`] module
//!   closes the feedback loop from *measured* timings. A
//!   [`rebalance::RebalancePlanner`] turns the per-query hybrid seconds of
//!   the last batch into a bounded [`rebalance::MigrationPlan`] (at most a
//!   configured number of records per round, with hysteresis so balanced
//!   layouts are left alone), and [`engine::QueryEngine::rebalance`]
//!   executes it live: moved records are read from the donor shard's
//!   copy-on-write replica, rebuilt shards swap in atomically between
//!   batches, and the migration is journaled as one epoch step (an
//!   identity update batch), so replicas that never rebalanced replay it
//!   like any other update and keep reconstructing identical records —
//!   layouts stay invisible to clients even mid-migration.
//! * **backend** — anything implementing [`batch::BatchExecutor`] (selector
//!   evaluation + wave-wise scans) plus [`server::PirServer`]:
//!   * [`server::pim::ImPirServer`] — the paper's system, running `dpXOR`
//!     on the simulated UPMEM PIM with the database preloaded in MRAM; its
//!     wave width is its DPU cluster count (§3.4, Figure 8);
//!   * [`server::cpu::CpuPirServer`] — a processor-centric server running
//!     the same scan on host threads (the CPU baseline's building block);
//!   * [`server::streaming::StreamingImPirServer`] — the out-of-core §3.3
//!     variant that re-streams database segments through MRAM.
//!
//!   To plug in a new backend, implement `BatchExecutor`'s three methods
//!   and hand instances to the engine via [`engine::QueryEngine::single`]
//!   or a per-shard factory in [`engine::QueryEngine::sharded`]; sharding,
//!   pipelining, backpressure and accounting come from the engine.
//!   Backends that additionally implement [`batch::UpdatableBackend`] (all
//!   three bundled backends do) unlock the §3.3 bulk-update path:
//!   [`engine::QueryEngine::apply_updates`] validates an update batch
//!   all-or-nothing, translates global record indices to each shard's
//!   local index space and fans the per-shard sets out in parallel, so
//!   every shard, replica and snapshot moves to the new database version
//!   together (tracked by an engine-level epoch).
//! * **substrate** — the [`impir_pim`] crate simulates the UPMEM hardware
//!   (MRAM/WRAM capacities, tasklets, transfer and kernel cost models) that
//!   the PIM-family backends run on.
//!
//! # Topology: the fleet as data
//!
//! *What a deployment looks like* is itself data: a
//! [`topology::FleetTopology`] names every replica (listen address,
//! backend kind and geometry, shard policy, journal depth, scan kernel)
//! plus the client-side retry policy and an optional front-tier router,
//! parsed from a hand-rolled line-oriented config file (hostile input
//! decodes to [`PirError::Config`] with line numbers, never a panic) and
//! serialized back losslessly. Every construction path goes through it:
//! `impir-server` (both `--config FILE` and the classic flags, which
//! desugar into the same value) builds its engine with
//! [`topology::FleetTopology::build_engine`], the schemes connect with
//! [`scheme::TwoServerPir::from_topology`] /
//! [`multi_server::NServerNaivePir::from_topology`], and the
//! `impir-server --router` front tier spreads client sessions over the
//! topology's replicas with health probing and failover. One artifact
//! decides fleet shape; everything else consumes it.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use impir_core::{database::Database, scheme::TwoServerPir, server::pim::ImPirConfig};
//!
//! // A tiny database of 256 records of 32 bytes each.
//! let db = Arc::new(Database::random(256, 32, 7)?);
//! let mut pir = TwoServerPir::with_pim_servers(db.clone(), ImPirConfig::tiny_test(4))?;
//! let record = pir.query(123)?;
//! assert_eq!(record, db.record(123));
//! # Ok::<(), impir_core::PirError>(())
//! ```
//!
//! For a sharded, multi-backend deployment see [`engine`] and the
//! `engine_throughput` example at the workspace root; for a real-socket
//! deployment (two servers over TCP, mixed local/remote, bulk updates over
//! the wire) see the `networked_deployment` example and the `impir-server`
//! binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod capacity;
pub mod client;
pub mod database;
pub mod dpxor;
pub mod engine;
mod error;
pub mod fault;
pub mod journal;
pub mod multi_server;
pub mod protocol;
pub mod rebalance;
pub mod scheme;
pub mod server;
pub mod shard;
pub mod topology;
pub mod transport;
pub mod wire;

pub use batch::{BatchConfig, BatchExecutor, UpdatableBackend, UpdateOutcome};
pub use capacity::{CapacityProfile, ProfiledBackend, ShardPlanner};
pub use client::PirClient;
pub use database::Database;
pub use engine::{EngineConfig, QueryEngine, ShardTiming};
pub use error::PirError;
pub use fault::{FaultAction, FaultInjectingTransport, FaultProxy, FaultSchedule};
pub use journal::{UpdateBatch, UpdateJournal};
pub use protocol::{QueryShare, ServerResponse};
pub use rebalance::{
    MigrationPlan, RebalanceConfig, RebalanceOutcome, RebalancePlanner, RecordMove,
};
pub use server::{BatchOutcome, PhaseBreakdown, PirServer};
pub use shard::{ShardPlan, ShardedDatabase};
pub use topology::{
    BackendFactory, BackendSpec, BoxedBackend, FleetEngine, FleetTopology, RebalanceMode,
    ReplicaSpec, RetrySpec, RouterSpec, SessionTier, ShardPolicy, TransportKind,
};
pub use transport::{
    LocalTransport, MuxConnection, MuxSession, PirTransport, RetryPolicy, ScanResult, ServerInfo,
    TcpTransport, TransportBatch,
};
pub use wire::EpochInfo;

/// Record size (in bytes) used throughout the paper's evaluation: each
/// record is a 32-byte (256-bit) hash, as in Certificate Transparency logs
/// and compromised-credential databases.
pub const PAPER_RECORD_BYTES: usize = 32;
