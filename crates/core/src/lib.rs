//! IM-PIR: in-memory (PIM-accelerated) multi-server private information
//! retrieval — the core contribution of the reproduced paper.
//!
//! The library implements the full two-server PIR protocol of the paper's
//! §3 and Algorithm 1:
//!
//! 1. the client encodes its query index as a pair of DPF keys
//!    ([`client::PirClient`], step ➊);
//! 2. each server evaluates its key over the whole database domain on the
//!    host CPU using the subtree-parallel strategy of §3.2 (step ➋);
//! 3. the selector bits are scattered to the DPUs holding the preloaded
//!    database chunks (step ➌);
//! 4. every DPU runs the two-stage parallel-reduction `dpXOR` kernel over
//!    its chunk (step ➍), subresults are copied back (➎) and aggregated on
//!    the host (➏);
//! 5. the client XORs the two servers' responses to recover the record
//!    (step ➐).
//!
//! Two interchangeable server backends implement the
//! [`server::PirServer`] trait:
//!
//! * [`server::pim::ImPirServer`] — the paper's system, running `dpXOR` on
//!   the simulated UPMEM PIM ([`impir_pim`]);
//! * [`server::cpu::CpuPirServer`] — a processor-centric server that runs
//!   the same scan on host threads (the building block of the CPU
//!   baseline).
//!
//! Batched query processing with DPU clusters (§3.4, Figure 8) lives in
//! [`batch`]; an end-to-end two-server deployment helper in [`scheme`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use impir_core::{database::Database, scheme::TwoServerPir, server::pim::ImPirConfig};
//!
//! // A tiny database of 256 records of 32 bytes each.
//! let db = Arc::new(Database::random(256, 32, 7)?);
//! let mut pir = TwoServerPir::with_pim_servers(db.clone(), ImPirConfig::tiny_test(4))?;
//! let record = pir.query(123)?;
//! assert_eq!(record, db.record(123));
//! # Ok::<(), impir_core::PirError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod client;
pub mod database;
pub mod dpxor;
mod error;
pub mod multi_server;
pub mod protocol;
pub mod scheme;
pub mod server;

pub use client::PirClient;
pub use database::Database;
pub use error::PirError;
pub use protocol::{QueryShare, ServerResponse};
pub use server::{BatchOutcome, PhaseBreakdown, PirServer};

/// Record size (in bytes) used throughout the paper's evaluation: each
/// record is a 32-byte (256-bit) hash, as in Certificate Transparency logs
/// and compromised-credential databases.
pub const PAPER_RECORD_BYTES: usize = 32;
