//! DPF key generation (`Gen`), run by the PIR client.
//!
//! `Gen(1^λ, i)` produces the two keys `(k1, k2)` that secret-share the
//! one-hot selector for database index `i` (§3.1, Algorithm 1 step ➊). Key
//! generation costs `O(log N)` PRG expansions, which is why the paper keeps
//! it on the client and reports it as negligible next to server-side work
//! (Figure 3a).

use impir_crypto::prg::LengthDoublingPrg;
use impir_crypto::Block;
use rand::Rng;

use crate::error::DpfError;
use crate::key::{CorrectionWord, DpfKey, PartyId};
use crate::MAX_DOMAIN_BITS;

/// Generates a DPF key pair sharing the point function `P_{alpha,1}` over a
/// domain of `2^domain_bits` indices.
///
/// The construction is the GGM/Boyle–Gilboa–Ishai tree DPF the paper adopts
/// from its references [36, 62]: both keys carry identical per-level
/// correction words and differ only in their pseudorandom root seeds (and
/// the public root control bit, which is the party index).
///
/// # Errors
///
/// * [`DpfError::InvalidDomain`] if `domain_bits` is zero or larger than
///   [`MAX_DOMAIN_BITS`];
/// * [`DpfError::PointOutOfDomain`] if `alpha >= 2^domain_bits`.
///
/// # Example
///
/// ```
/// use impir_dpf::gen::generate_keys;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let (k1, k2) = generate_keys(16, 40_000, &mut rng)?;
/// assert_eq!(k1.correction_words(), k2.correction_words());
/// assert_ne!(k1.root_seed(), k2.root_seed());
/// # Ok::<(), impir_dpf::DpfError>(())
/// ```
pub fn generate_keys<R: Rng + ?Sized>(
    domain_bits: u32,
    alpha: u64,
    rng: &mut R,
) -> Result<(DpfKey, DpfKey), DpfError> {
    generate_keys_with_prg(domain_bits, alpha, rng, &LengthDoublingPrg::default())
}

/// Same as [`generate_keys`] but with a caller-provided PRG instance.
///
/// All parties (client and both servers) must use the same PRG keys; the
/// default instance is what the rest of the workspace uses. Exposed so the
/// evaluation-strategy benchmarks can share a single expanded PRG.
///
/// # Errors
///
/// See [`generate_keys`].
pub fn generate_keys_with_prg<R: Rng + ?Sized>(
    domain_bits: u32,
    alpha: u64,
    rng: &mut R,
    prg: &LengthDoublingPrg,
) -> Result<(DpfKey, DpfKey), DpfError> {
    if domain_bits == 0 || domain_bits > MAX_DOMAIN_BITS {
        return Err(DpfError::InvalidDomain { domain_bits });
    }
    if domain_bits < 64 && alpha >= (1u64 << domain_bits) {
        return Err(DpfError::PointOutOfDomain { alpha, domain_bits });
    }

    // Root seeds: pseudorandom, with the low bit reserved for control bits.
    let mut seed_1 = Block::from(rng.gen::<u128>()).with_lsb_cleared();
    let mut seed_2 = Block::from(rng.gen::<u128>()).with_lsb_cleared();
    if seed_1 == seed_2 {
        // Astronomically unlikely, but identical seeds would make the DPF
        // trivially insecure *and* incorrect; re-drawing keeps Gen total.
        seed_2 ^= Block::from(1u128 << 1);
    }
    let root_seed_1 = seed_1;
    let root_seed_2 = seed_2;

    // Root control bits are the party indices.
    let mut control_1 = false;
    let mut control_2 = true;

    let mut correction_words = Vec::with_capacity(domain_bits as usize);

    for level in 0..domain_bits {
        // Bits of alpha are consumed MSB-first so that leaf `x` sits at tree
        // position `x` when levels are expanded left-to-right.
        let alpha_bit = (alpha >> (domain_bits - 1 - level)) & 1 == 1;

        let expansion_1 = prg.expand(seed_1);
        let expansion_2 = prg.expand(seed_2);

        let keep = alpha_bit;
        let lose = !alpha_bit;

        let seed_cw = expansion_1.child(lose).seed ^ expansion_2.child(lose).seed;
        let control_cw_left =
            expansion_1.left.control ^ expansion_2.left.control ^ alpha_bit ^ true;
        let control_cw_right = expansion_1.right.control ^ expansion_2.right.control ^ alpha_bit;

        let control_cw_keep = if keep {
            control_cw_right
        } else {
            control_cw_left
        };

        let next_seed_1 = if control_1 {
            expansion_1.child(keep).seed ^ seed_cw
        } else {
            expansion_1.child(keep).seed
        };
        let next_seed_2 = if control_2 {
            expansion_2.child(keep).seed ^ seed_cw
        } else {
            expansion_2.child(keep).seed
        };
        let next_control_1 = expansion_1.child(keep).control ^ (control_1 & control_cw_keep);
        let next_control_2 = expansion_2.child(keep).control ^ (control_2 & control_cw_keep);

        correction_words.push(CorrectionWord {
            seed: seed_cw,
            control_left: control_cw_left,
            control_right: control_cw_right,
        });

        seed_1 = next_seed_1;
        seed_2 = next_seed_2;
        control_1 = next_control_1;
        control_2 = next_control_2;
    }

    let key_1 = DpfKey::from_parts(
        PartyId::Server1,
        domain_bits,
        root_seed_1,
        correction_words.clone(),
    )?;
    let key_2 = DpfKey::from_parts(PartyId::Server2, domain_bits, root_seed_2, correction_words)?;
    Ok((key_1, key_2))
}

/// Number of PRG node expansions key generation performs.
///
/// Used by the performance model to attribute client-side cost (the `Gen`
/// bar of Figure 3a).
#[must_use]
pub fn gen_prg_expansions(domain_bits: u32) -> u64 {
    2 * u64::from(domain_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_domains() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            generate_keys(0, 0, &mut rng),
            Err(DpfError::InvalidDomain { .. })
        ));
        assert!(matches!(
            generate_keys(MAX_DOMAIN_BITS + 1, 0, &mut rng),
            Err(DpfError::InvalidDomain { .. })
        ));
    }

    #[test]
    fn rejects_alpha_outside_domain() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            generate_keys(4, 16, &mut rng),
            Err(DpfError::PointOutOfDomain { .. })
        ));
    }

    #[test]
    fn keys_share_correction_words_but_not_seeds() {
        let mut rng = StdRng::seed_from_u64(5);
        let (k1, k2) = generate_keys(10, 77, &mut rng).expect("valid");
        assert_eq!(k1.correction_words(), k2.correction_words());
        assert_ne!(k1.root_seed(), k2.root_seed());
        assert_eq!(k1.party(), PartyId::Server1);
        assert_eq!(k2.party(), PartyId::Server2);
    }

    #[test]
    fn shares_reconstruct_point_function_small_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        for domain_bits in 1..=8u32 {
            let domain = 1u64 << domain_bits;
            let alpha = rng.gen_range(0..domain);
            let (k1, k2) = generate_keys(domain_bits, alpha, &mut rng).expect("valid");
            for x in 0..domain {
                let bit = eval_point(&k1, x).unwrap() ^ eval_point(&k2, x).unwrap();
                assert_eq!(bit, x == alpha, "domain_bits={domain_bits} x={x}");
            }
        }
    }

    #[test]
    fn gen_cost_model_is_linear_in_depth() {
        assert_eq!(gen_prg_expansions(1), 2);
        assert_eq!(gen_prg_expansions(30), 60);
    }
}
