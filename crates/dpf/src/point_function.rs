//! Point functions `P_{α,β}` — what a DPF secret-shares.

use serde::{Deserialize, Serialize};

/// A point function over a `u64` domain with a boolean output.
///
/// `P_{α,β}(x) = β` if `x = α` and `0` otherwise (§2.3). In PIR, `α` is the
/// index of the record the client wants and `β = 1` so the function acts as
/// a one-hot selector over the database.
///
/// # Example
///
/// ```
/// use impir_dpf::point_function::PointFunction;
///
/// let p = PointFunction::new(5, true);
/// assert!(p.eval(5));
/// assert!(!p.eval(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PointFunction {
    alpha: u64,
    beta: bool,
}

impl PointFunction {
    /// Creates the point function that maps `alpha` to `beta` and everything
    /// else to `false`.
    #[must_use]
    pub fn new(alpha: u64, beta: bool) -> Self {
        PointFunction { alpha, beta }
    }

    /// The one-hot selector for PIR index `alpha` (i.e. `β = 1`).
    #[must_use]
    pub fn selector(alpha: u64) -> Self {
        PointFunction { alpha, beta: true }
    }

    /// The distinguished input `α`.
    #[must_use]
    pub fn alpha(&self) -> u64 {
        self.alpha
    }

    /// The output `β` at the distinguished input.
    #[must_use]
    pub fn beta(&self) -> bool {
        self.beta
    }

    /// Evaluates the point function at `x`.
    #[must_use]
    pub fn eval(&self, x: u64) -> bool {
        x == self.alpha && self.beta
    }

    /// Materialises the function as a plain one-hot vector over a domain of
    /// `domain_size` entries.
    ///
    /// This is the query vector of the paper's Figure 1/2 before secret
    /// sharing — only practical for small domains and used by tests.
    #[must_use]
    pub fn to_onehot(&self, domain_size: usize) -> Vec<bool> {
        (0..domain_size as u64).map(|x| self.eval(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_is_one_at_alpha_only() {
        let p = PointFunction::selector(3);
        let hot = p.to_onehot(8);
        assert_eq!(hot.iter().filter(|b| **b).count(), 1);
        assert!(hot[3]);
    }

    #[test]
    fn beta_false_is_the_zero_function() {
        let p = PointFunction::new(3, false);
        assert!(p.to_onehot(8).iter().all(|b| !b));
    }

    #[test]
    fn accessors_return_construction_values() {
        let p = PointFunction::new(42, true);
        assert_eq!(p.alpha(), 42);
        assert!(p.beta());
    }
}
