//! Packed selector bit-vectors.
//!
//! A server's full-domain DPF evaluation produces one selector bit per
//! database record — `Eval(k, j)` for every `j` — which is then used to
//! decide whether record `j` participates in the XOR accumulation (§3.3).
//! Storing those bits packed 64-per-word keeps the vector 8× smaller than a
//! byte-per-bit layout and lets the `dpXOR` kernels and the CPU↔DPU copies
//! move whole words, which is also how the paper ships "bit arrays" to the
//! DPUs.

use serde::{Deserialize, Serialize};

/// A densely packed vector of selector bits.
///
/// # Example
///
/// ```
/// use impir_dpf::SelectorVector;
///
/// let mut v = SelectorVector::zeros(130);
/// v.set(0, true);
/// v.set(129, true);
/// assert_eq!(v.count_ones(), 2);
/// assert!(v.get(129));
/// assert!(!v.get(64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SelectorVector {
    words: Vec<u64>,
    len: usize,
}

impl SelectorVector {
    /// Creates an all-zero vector of `len` bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        SelectorVector {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a vector from an iterator of booleans.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut vector = SelectorVector::zeros(0);
        for bit in bits {
            vector.push(bit);
        }
        vector
    }

    /// Number of bits in the vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit at the end of the vector.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let offset = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1 << offset;
        }
        self.len += 1;
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets the bit at `index` to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % 64);
        if bit {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed 64-bit words backing the vector.
    ///
    /// Bits beyond `len()` in the final word are guaranteed to be zero as
    /// long as the vector was only modified through this API.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The packed representation as bytes (little-endian words), the layout
    /// copied into DPU MRAM.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// Reconstructs a vector from the packed byte layout produced by
    /// [`SelectorVector::to_bytes`].
    ///
    /// Extra trailing bytes (zero padding) are tolerated; missing bytes are
    /// not.
    #[must_use]
    pub fn from_bytes(bytes: &[u8], len: usize) -> Option<Self> {
        let needed_words = len.div_ceil(64);
        if bytes.len() < needed_words * 8 {
            return None;
        }
        let words = bytes[..needed_words * 8]
            .chunks_exact(8)
            .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("chunk of 8 bytes")))
            .collect();
        Some(SelectorVector { words, len })
    }

    /// Reserves capacity for at least `additional_bits` more bits, so that
    /// subsequent appends perform no reallocation.
    ///
    /// Lets hot paths (the DPF expansion pipeline) size a query's selector
    /// vector once up front.
    pub fn reserve_bits(&mut self, additional_bits: usize) {
        let needed_words = (self.len + additional_bits).div_ceil(64);
        self.words
            .reserve(needed_words.saturating_sub(self.words.len()));
    }

    /// Appends the first `count` bits of the packed `words` (bit `i` of the
    /// sequence is bit `i % 64` of `words[i / 64]`) to the end of the
    /// vector, shifting and merging whole words at the current bit offset —
    /// the word-level replacement for pushing bits one at a time.
    ///
    /// Bits of `words` at positions `count` and beyond are ignored, so
    /// callers may hand over scratch buffers with stale tails.
    ///
    /// # Panics
    ///
    /// Panics if `words` holds fewer than `count` bits.
    pub fn extend_from_words(&mut self, words: &[u64], count: usize) {
        assert!(
            count <= words.len() * 64,
            "{count} bits requested from {} words",
            words.len()
        );
        if count == 0 {
            return;
        }
        let src_words = count.div_ceil(64);
        let new_len = self.len + count;
        let offset = self.len % 64;
        self.words.resize(new_len.div_ceil(64), 0);
        let base = self.len / 64;
        if offset == 0 {
            self.words[base..base + src_words].copy_from_slice(&words[..src_words]);
        } else {
            for (k, &word) in words[..src_words].iter().enumerate() {
                self.words[base + k] |= word << offset;
                if base + k + 1 < self.words.len() {
                    self.words[base + k + 1] = word >> (64 - offset);
                }
            }
        }
        self.len = new_len;
        self.clear_tail();
    }

    /// Appends all of `other`'s bits to the end of the vector using the
    /// word-level shift-and-merge path.
    pub fn extend_from_bitvec(&mut self, other: &SelectorVector) {
        self.extend_from_words(&other.words, other.len);
    }

    /// Zeroes any bits of the final word at positions `len` and beyond,
    /// restoring the invariant [`SelectorVector::words`] documents.
    fn clear_tail(&mut self) {
        if !self.len.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (self.len % 64)) - 1;
            }
        }
    }

    /// XORs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn xor_assign(&mut self, other: &SelectorVector) {
        assert_eq!(self.len, other.len, "selector vectors must match in length");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    /// Iterates over the bits of the vector.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Extracts the sub-vector covering `[start, start + count)`.
    ///
    /// This is how a full-domain evaluation is split into the per-DPU
    /// chunks described in §3.3 ("the first DPU receives the first `B_d`
    /// DPF evaluation results..."). Word-aligned starts copy whole words;
    /// unaligned starts shift-and-merge adjacent word pairs — neither path
    /// touches individual bits.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the end of the vector.
    #[must_use]
    pub fn slice(&self, start: usize, count: usize) -> SelectorVector {
        assert!(
            start + count <= self.len,
            "slice [{start}, {}) out of range {}",
            start + count,
            self.len
        );
        let first_word = start / 64;
        let offset = start % 64;
        let words_needed = count.div_ceil(64);
        let mut words: Vec<u64>;
        if offset == 0 {
            words = self.words[first_word..first_word + words_needed].to_vec();
        } else {
            words = Vec::with_capacity(words_needed);
            for k in 0..words_needed {
                let low = self.words[first_word + k] >> offset;
                let high = self
                    .words
                    .get(first_word + k + 1)
                    .map_or(0, |word| word << (64 - offset));
                words.push(low | high);
            }
        }
        // Clear any bits past `count` in the final word.
        if !count.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (count % 64)) - 1;
            }
        }
        SelectorVector { words, len: count }
    }

    /// Concatenates a sequence of vectors into one, merging whole words.
    #[must_use]
    pub fn concat(parts: &[SelectorVector]) -> SelectorVector {
        let total: usize = parts.iter().map(SelectorVector::len).sum();
        let mut out = SelectorVector::zeros(0);
        out.reserve_bits(total);
        for part in parts {
            out.extend_from_bitvec(part);
        }
        out
    }
}

impl FromIterator<bool> for SelectorVector {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        SelectorVector::from_bits(iter)
    }
}

impl Extend<bool> for SelectorVector {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for bit in iter {
            self.push(bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The retired bit-by-bit slice, kept as the oracle for the word path.
    fn slice_bitwise(vector: &SelectorVector, start: usize, count: usize) -> SelectorVector {
        SelectorVector::from_bits((start..start + count).map(|i| vector.get(i)))
    }

    /// The retired bit-by-bit concat, kept as the oracle for the word path.
    fn concat_bitwise(parts: &[SelectorVector]) -> SelectorVector {
        let mut out = SelectorVector::zeros(0);
        for part in parts {
            for bit in part.iter() {
                out.push(bit);
            }
        }
        out
    }

    fn pseudo_vector(len: usize, seed: u64) -> SelectorVector {
        (0..len)
            .map(|i| {
                (i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .rotate_left(17)
                    % 7
                    < seed % 7
            })
            .collect()
    }

    #[test]
    fn slice_matches_bitwise_oracle_everywhere() {
        let vector = pseudo_vector(403, 3);
        for start in [0usize, 1, 7, 63, 64, 65, 100, 128, 200, 402] {
            for count in [0usize, 1, 5, 63, 64, 65, 127, 130, 203] {
                if start + count > vector.len() {
                    continue;
                }
                assert_eq!(
                    vector.slice(start, count),
                    slice_bitwise(&vector, start, count),
                    "start={start} count={count}"
                );
            }
        }
    }

    #[test]
    fn concat_matches_bitwise_oracle() {
        for lens in [
            vec![0usize, 1, 63],
            vec![64, 64],
            vec![13, 51, 7, 130, 1],
            vec![200],
            vec![],
        ] {
            let parts: Vec<SelectorVector> = lens
                .iter()
                .enumerate()
                .map(|(i, &len)| pseudo_vector(len, i as u64 + 2))
                .collect();
            assert_eq!(
                SelectorVector::concat(&parts),
                concat_bitwise(&parts),
                "lens={lens:?}"
            );
        }
    }

    #[test]
    fn extend_from_words_matches_pushes_at_every_offset() {
        for initial in [0usize, 1, 37, 63, 64, 65, 128] {
            for count in [0usize, 1, 17, 64, 65, 128, 129] {
                let mut vector = pseudo_vector(initial, 5);
                let expected_bits: Vec<bool> = (0..count).map(|i| (i * 11) % 3 == 0).collect();
                let mut expected = vector.clone();
                for &bit in &expected_bits {
                    expected.push(bit);
                }
                // Pack the bits and poison the tail of the last word to
                // check stale source bits are masked off.
                let mut words = vec![0u64; count.div_ceil(64).max(1)];
                for (i, &bit) in expected_bits.iter().enumerate() {
                    if bit {
                        words[i / 64] |= 1 << (i % 64);
                    }
                }
                if !count.is_multiple_of(64) {
                    *words.last_mut().unwrap() |= !((1u64 << (count % 64)) - 1);
                }
                vector.extend_from_words(&words, count);
                assert_eq!(vector, expected, "initial={initial} count={count}");
            }
        }
    }

    #[test]
    fn extend_from_bitvec_equals_extend_iterator() {
        let mut word_path = pseudo_vector(77, 1);
        let mut bit_path = word_path.clone();
        let suffix = pseudo_vector(190, 4);
        word_path.extend_from_bitvec(&suffix);
        bit_path.extend(suffix.iter());
        assert_eq!(word_path, bit_path);
    }

    #[test]
    #[should_panic(expected = "bits requested")]
    fn extend_from_words_rejects_short_buffers() {
        let mut vector = SelectorVector::zeros(0);
        vector.extend_from_words(&[0u64], 65);
    }

    #[test]
    fn push_get_roundtrip() {
        let bits: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let vector: SelectorVector = bits.iter().copied().collect();
        assert_eq!(vector.len(), bits.len());
        for (i, bit) in bits.iter().enumerate() {
            assert_eq!(vector.get(i), *bit, "bit {i}");
        }
    }

    #[test]
    fn count_ones_matches_naive() {
        let bits: Vec<bool> = (0..777).map(|i| (i * 7) % 11 < 4).collect();
        let vector: SelectorVector = bits.iter().copied().collect();
        assert_eq!(vector.count_ones(), bits.iter().filter(|b| **b).count());
    }

    #[test]
    fn xor_assign_is_bitwise() {
        let a: SelectorVector = (0..100).map(|i| i % 2 == 0).collect();
        let b: SelectorVector = (0..100).map(|i| i % 3 == 0).collect();
        let mut c = a.clone();
        c.xor_assign(&b);
        for i in 0..100 {
            assert_eq!(c.get(i), a.get(i) ^ b.get(i));
        }
    }

    #[test]
    fn slice_word_aligned_and_unaligned() {
        let bits: Vec<bool> = (0..300).map(|i| (i / 5) % 2 == 0).collect();
        let vector: SelectorVector = bits.iter().copied().collect();
        for (start, count) in [(0, 64), (64, 100), (7, 80), (130, 170), (299, 1)] {
            let sliced = vector.slice(start, count);
            assert_eq!(sliced.len(), count);
            for i in 0..count {
                assert_eq!(sliced.get(i), bits[start + i], "start={start} i={i}");
            }
        }
    }

    #[test]
    fn aligned_slice_clears_trailing_bits() {
        let vector: SelectorVector = (0..128).map(|_| true).collect();
        let sliced = vector.slice(0, 70);
        assert_eq!(sliced.count_ones(), 70);
    }

    #[test]
    fn bytes_roundtrip() {
        let vector: SelectorVector = (0..130).map(|i| i % 7 == 0).collect();
        let bytes = vector.to_bytes();
        let restored = SelectorVector::from_bytes(&bytes, vector.len()).expect("enough bytes");
        assert_eq!(restored, vector);
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let vector: SelectorVector = (0..130).map(|i| i % 2 == 0).collect();
        let bytes = vector.to_bytes();
        assert!(SelectorVector::from_bytes(&bytes[..bytes.len() - 1], vector.len()).is_none());
    }

    #[test]
    fn concat_restores_slices() {
        let vector: SelectorVector = (0..250).map(|i| i % 13 == 0).collect();
        let parts = vec![
            vector.slice(0, 100),
            vector.slice(100, 100),
            vector.slice(200, 50),
        ];
        assert_eq!(SelectorVector::concat(&parts), vector);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let vector = SelectorVector::zeros(10);
        let _ = vector.get(10);
    }

    #[test]
    fn empty_vector_behaves() {
        let vector = SelectorVector::zeros(0);
        assert!(vector.is_empty());
        assert_eq!(vector.count_ones(), 0);
        assert!(vector.to_bytes().is_empty());
    }
}
