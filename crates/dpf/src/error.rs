//! Error type for DPF operations.

use std::fmt;

/// Errors returned by DPF key generation and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DpfError {
    /// The requested domain size (in bits) is zero or exceeds
    /// [`crate::MAX_DOMAIN_BITS`].
    InvalidDomain {
        /// The offending number of domain bits.
        domain_bits: u32,
    },
    /// The point `alpha` lies outside the domain `[0, 2^domain_bits)`.
    PointOutOfDomain {
        /// The requested point.
        alpha: u64,
        /// The domain size in bits.
        domain_bits: u32,
    },
    /// The evaluation input lies outside the key's domain.
    InputOutOfDomain {
        /// The evaluation input.
        input: u64,
        /// The domain size in bits.
        domain_bits: u32,
    },
    /// A serialized key was truncated or otherwise malformed.
    MalformedKey {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The two keys handed to a higher-level routine belong to different
    /// domains and cannot be combined.
    DomainMismatch {
        /// Domain bits of the first key.
        left: u32,
        /// Domain bits of the second key.
        right: u32,
    },
}

impl fmt::Display for DpfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpfError::InvalidDomain { domain_bits } => {
                write!(f, "invalid DPF domain of {domain_bits} bits")
            }
            DpfError::PointOutOfDomain { alpha, domain_bits } => write!(
                f,
                "point {alpha} does not fit in a {domain_bits}-bit domain"
            ),
            DpfError::InputOutOfDomain { input, domain_bits } => write!(
                f,
                "evaluation input {input} does not fit in a {domain_bits}-bit domain"
            ),
            DpfError::MalformedKey { reason } => write!(f, "malformed DPF key: {reason}"),
            DpfError::DomainMismatch { left, right } => write!(
                f,
                "DPF keys have mismatched domains ({left} vs {right} bits)"
            ),
        }
    }
}

impl std::error::Error for DpfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = DpfError::PointOutOfDomain {
            alpha: 10,
            domain_bits: 3,
        };
        let text = err.to_string();
        assert!(text.contains("10"));
        assert!(text.contains("3-bit"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DpfError>();
    }
}
