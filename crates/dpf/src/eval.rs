//! DPF evaluation (`Eval`), run by each PIR server.
//!
//! Evaluating a key at a single index walks one root-to-leaf path of the
//! GGM computation tree (eqs. (1)–(3) of the paper); expanding the key over
//! the whole database domain — what the server actually does for every
//! query — is a full tree expansion whose parallelisation strategies live in
//! [`crate::parallel`].
//!
//! # Buffer-reuse design
//!
//! Full-domain expansion is the server's hottest loop, so it is built as a
//! **zero-allocation, word-packed pipeline** around [`EvalScratch`]:
//!
//! * each level's parent seeds are expanded by
//!   [`LengthDoublingPrg::expand_level_into`] straight into the scratch's
//!   `left`/`right` block buffers, with the children's control bits packed
//!   into `u64` words *already in left-to-right child order* — no
//!   per-node intermediates;
//! * the per-level correction (BGI: XOR the level's correction word into
//!   every child of a parent whose control bit is set) is applied to the
//!   control bits **64 at a time** by spreading the parent control word
//!   across the child word, and to the seeds while interleaving them back
//!   into the scratch's ping-pong `seeds` buffer;
//! * the leaf level never materialises seeds or `Vec<bool>`s: the corrected
//!   control words are shift-merged directly into the output
//!   [`SelectorVector`] via [`SelectorVector::extend_from_words`].
//!
//! All buffers are sized once to the largest subtree an [`EvalScratch`]
//! has seen, so steady-state batch serving ([`ScratchPool`], one scratch
//! per in-flight evaluation) performs no heap allocation on the expansion
//! path. [`expand_subtree_reference`] keeps the original level-by-level
//! expansion as the correctness oracle and benchmark baseline.

use std::sync::Mutex;

use impir_crypto::prg::LengthDoublingPrg;
use impir_crypto::Block;

use crate::bitvec::SelectorVector;
use crate::error::DpfError;
use crate::key::DpfKey;

/// The evaluation state at one GGM node: the pseudorandom seed and the
/// party's control bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeState {
    /// The node's pseudorandom seed (low bit cleared).
    pub seed: Block,
    /// The party's control bit at this node.
    pub control: bool,
}

impl NodeState {
    /// The root state encoded in a key.
    #[must_use]
    pub fn root(key: &DpfKey) -> NodeState {
        NodeState {
            seed: key.root_seed(),
            control: key.root_control(),
        }
    }
}

/// Advances a node state one level down the tree, following `bit`.
///
/// Applies the level's correction word when the current control bit is set,
/// exactly as in the BGI evaluation procedure.
#[must_use]
pub fn step(
    key: &DpfKey,
    state: NodeState,
    level: usize,
    bit: bool,
    prg: &LengthDoublingPrg,
) -> NodeState {
    let expansion = prg.expand_one(state.seed, bit);
    let cw = key.correction_words()[level];
    if state.control {
        NodeState {
            seed: expansion.seed ^ cw.seed,
            control: expansion.control
                ^ if bit {
                    cw.control_right
                } else {
                    cw.control_left
                },
        }
    } else {
        NodeState {
            seed: expansion.seed,
            control: expansion.control,
        }
    }
}

/// Expands a node state into both children at `level`.
#[must_use]
pub fn step_both(
    key: &DpfKey,
    state: NodeState,
    level: usize,
    prg: &LengthDoublingPrg,
) -> (NodeState, NodeState) {
    let expansion = prg.expand(state.seed);
    let cw = key.correction_words()[level];
    let (mut left, mut right) = (
        NodeState {
            seed: expansion.left.seed,
            control: expansion.left.control,
        },
        NodeState {
            seed: expansion.right.seed,
            control: expansion.right.control,
        },
    );
    if state.control {
        left.seed ^= cw.seed;
        left.control ^= cw.control_left;
        right.seed ^= cw.seed;
        right.control ^= cw.control_right;
    }
    (left, right)
}

/// Evaluates the key at a single domain point.
///
/// `Eval(k, x)` returns this party's share of `P_{α,1}(x)`; XORing both
/// parties' shares yields 1 exactly when `x = α`.
///
/// # Errors
///
/// Returns [`DpfError::InputOutOfDomain`] if `x` does not fit in the key's
/// domain.
///
/// # Example
///
/// ```
/// use impir_dpf::{gen::generate_keys, eval::eval_point};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let (k1, k2) = generate_keys(6, 9, &mut rng)?;
/// assert!(eval_point(&k1, 9)? ^ eval_point(&k2, 9)?);
/// assert!(!(eval_point(&k1, 8)? ^ eval_point(&k2, 8)?));
/// # Ok::<(), impir_dpf::DpfError>(())
/// ```
pub fn eval_point(key: &DpfKey, x: u64) -> Result<bool, DpfError> {
    eval_point_with_prg(key, x, &LengthDoublingPrg::default())
}

/// [`eval_point`] with a caller-provided PRG (avoids re-expanding the fixed
/// AES keys in tight loops).
///
/// # Errors
///
/// Returns [`DpfError::InputOutOfDomain`] if `x` does not fit in the key's
/// domain.
pub fn eval_point_with_prg(
    key: &DpfKey,
    x: u64,
    prg: &LengthDoublingPrg,
) -> Result<bool, DpfError> {
    let domain_bits = key.domain_bits();
    if domain_bits < 64 && x >= (1u64 << domain_bits) {
        return Err(DpfError::InputOutOfDomain {
            input: x,
            domain_bits,
        });
    }
    let mut state = NodeState::root(key);
    for level in 0..domain_bits {
        let bit = (x >> (domain_bits - 1 - level)) & 1 == 1;
        state = step(key, state, level as usize, bit, prg);
    }
    Ok(state.control)
}

/// Walks from the root down `prefix_bits` levels following `prefix`
/// (MSB-first), returning the state of the interior node that roots the
/// subtree of all leaves sharing that prefix.
///
/// This is the entry point for chunked ("memory-bounded") and subtree-
/// parallel full-domain evaluation: a worker first positions itself at its
/// subtree root, then expands only that subtree.
///
/// # Errors
///
/// Returns [`DpfError::InputOutOfDomain`] if `prefix_bits` exceeds the
/// key's depth or the prefix has bits above `prefix_bits`.
pub fn eval_prefix(
    key: &DpfKey,
    prefix: u64,
    prefix_bits: u32,
    prg: &LengthDoublingPrg,
) -> Result<NodeState, DpfError> {
    if prefix_bits > key.domain_bits() {
        return Err(DpfError::InputOutOfDomain {
            input: prefix,
            domain_bits: key.domain_bits(),
        });
    }
    if prefix_bits < 64 && prefix >= (1u64 << prefix_bits) {
        return Err(DpfError::InputOutOfDomain {
            input: prefix,
            domain_bits: prefix_bits,
        });
    }
    let mut state = NodeState::root(key);
    for level in 0..prefix_bits {
        let bit = (prefix >> (prefix_bits - 1 - level)) & 1 == 1;
        state = step(key, state, level as usize, bit, prg);
    }
    Ok(state)
}

/// Reusable buffers for the word-packed subtree expansion (see the module
/// docs).
///
/// A scratch grows to fit the largest subtree it has expanded and is then
/// reused allocation-free: the steady state of batch serving keeps one
/// scratch per in-flight evaluation (see [`ScratchPool`]) so no query pays
/// for buffer setup.
///
/// # Example
///
/// ```
/// use impir_dpf::{gen::generate_keys, eval, SelectorVector};
/// use impir_crypto::prg::LengthDoublingPrg;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let (k1, _) = generate_keys(8, 17, &mut rng)?;
/// let prg = LengthDoublingPrg::default();
/// let mut scratch = eval::EvalScratch::new();
/// let mut out = SelectorVector::zeros(0);
/// eval::eval_range_into(&k1, 0, 256, &prg, &mut scratch, &mut out)?;
/// assert_eq!(out, eval::eval_full(&k1));
/// # Ok::<(), impir_dpf::DpfError>(())
/// ```
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// The ping-pong seed buffer: holds the current level's node seeds in
    /// left-to-right order; children are interleaved back into it as their
    /// parents are consumed.
    seeds: Vec<Block>,
    /// Raw left-child seeds straight out of the PRG for one level.
    left: Vec<Block>,
    /// Raw right-child seeds straight out of the PRG for one level.
    right: Vec<Block>,
    /// Packed control bits of the current level (bit `i` = node `i`).
    controls: Vec<u64>,
    /// Packed, interleaved child control bits of the level being expanded;
    /// swapped with `controls` after each level (the control-word
    /// ping-pong).
    child_controls: Vec<u64>,
}

impl EvalScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        EvalScratch::default()
    }

    /// Creates a scratch pre-sized for subtrees of up to `2^depth` leaves.
    #[must_use]
    pub fn with_subtree_depth(depth: u32) -> Self {
        let mut scratch = EvalScratch::new();
        scratch.ensure(depth);
        scratch
    }

    /// Grows the buffers to fit a subtree of `2^depth` leaves. No-op (and
    /// allocation-free) when the scratch is already large enough.
    fn ensure(&mut self, depth: u32) {
        // The widest level whose seeds must be stored — and the widest set
        // of parents expanded at once — is the last interior level,
        // 2^(depth-1) nodes; the control words must additionally hold the
        // leaf level's 2^depth bits.
        let widest = 1usize << depth.saturating_sub(1);
        let control_words = (1usize << depth).div_ceil(64);
        if self.seeds.len() < widest {
            self.seeds.resize(widest, Block::ZERO);
            self.left.resize(widest, Block::ZERO);
            self.right.resize(widest, Block::ZERO);
        }
        if self.controls.len() < control_words {
            self.controls.resize(control_words, 0);
            self.child_controls.resize(control_words, 0);
        }
    }
}

/// A shareable check-out/check-in pool of reusable buffers.
///
/// Generic over the buffer type so the DPF expansion scratches
/// ([`ScratchPool`]) and the `dpXOR` scan's accumulator words share one
/// implementation. A buffer is created only when every pooled one is
/// checked out, so after warm-up (one buffer per concurrent user) the pool
/// hands out warmed buffers allocation-free.
#[derive(Debug, Default)]
pub struct BufferPool<T> {
    pool: Mutex<Vec<T>>,
}

impl<T: Default> BufferPool<T> {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        BufferPool {
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Runs `f` with a buffer checked out of the pool (creating one only
    /// if every buffer is in use), returning it afterwards.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut buffer = self
            .pool
            .lock()
            .expect("buffer pool poisoned")
            .pop()
            .unwrap_or_default();
        let result = f(&mut buffer);
        self.pool.lock().expect("buffer pool poisoned").push(buffer);
        result
    }

    /// Number of buffers currently resting in the pool (i.e. not checked
    /// out). After a batch drains, this is the number of distinct buffers
    /// the batch warmed up.
    #[must_use]
    pub fn idle_count(&self) -> usize {
        self.pool.lock().expect("buffer pool poisoned").len()
    }
}

/// A pool of [`EvalScratch`]es for concurrent evaluators: the batch
/// pipeline's stage-1 workers evaluate through one shared closure, and the
/// pool hands each in-flight evaluation its own scratch, so batch serving
/// allocates nothing on the expansion path in the steady state.
pub type ScratchPool = BufferPool<EvalScratch>;

/// Spreads the low 32 bits of `x` to the even bit positions (bit `j` moves
/// to bit `2j`) — the mask that maps one word of parent control bits onto
/// the interleaved left/right child control bits they correct.
#[inline]
fn interleave_with_zeros(x: u64) -> u64 {
    let mut x = x & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Expands the subtree rooted at `state` (which sits `start_level` levels
/// below the root) down to the leaves, appending the leaf control bits
/// left-to-right to `out`.
///
/// This is the zero-allocation pipeline described in the module docs: all
/// intermediates live in `scratch` (which grows only if the subtree is
/// larger than any it has seen) and the leaf level is written into `out`
/// as packed words.
pub fn expand_subtree_into(
    key: &DpfKey,
    state: NodeState,
    start_level: u32,
    prg: &LengthDoublingPrg,
    scratch: &mut EvalScratch,
    out: &mut SelectorVector,
) {
    let depth = key.domain_bits() - start_level;
    if depth == 0 {
        out.push(state.control);
        return;
    }
    scratch.ensure(depth);
    let EvalScratch {
        seeds,
        left,
        right,
        controls,
        child_controls,
    } = scratch;
    seeds[0] = state.seed;
    controls[0] = u64::from(state.control);
    let mut nodes = 1usize;
    for level in start_level..key.domain_bits() {
        let cw = key.correction_words()[level as usize];
        prg.expand_level_into(&seeds[..nodes], left, right, child_controls);

        // Control-bit correction, 64 children (32 parents) per iteration:
        // child bit 2i (left) flips iff parent i's control bit is set and
        // the correction word's left flag is set; bit 2i + 1 likewise with
        // the right flag. (Parent bits past `nodes` may be stale from a
        // previous level; the child bits they corrupt lie past 2·nodes and
        // are never read.)
        let child_words = (2 * nodes).div_ceil(64);
        let flip_left = u64::from(cw.control_left);
        let flip_right = u64::from(cw.control_right);
        if flip_left | flip_right != 0 {
            for word in 0..child_words {
                let parents = controls[word / 2] >> ((word % 2) * 32);
                let spread = interleave_with_zeros(parents);
                child_controls[word] ^= (spread * flip_left) | ((spread << 1) * flip_right);
            }
        }

        if level + 1 == key.domain_bits() {
            // Leaf level: the corrected control words are the selector
            // bits — merge them into the output without touching seeds.
            out.extend_from_words(&child_controls[..child_words], 2 * nodes);
        } else {
            // Interior level: apply the seed correction while interleaving
            // the children back into the ping-pong buffer.
            for parent in 0..nodes {
                let parent_on = (controls[parent / 64] >> (parent % 64)) & 1 == 1;
                let (mut left_seed, mut right_seed) = (left[parent], right[parent]);
                if parent_on {
                    left_seed ^= cw.seed;
                    right_seed ^= cw.seed;
                }
                seeds[2 * parent] = left_seed;
                seeds[2 * parent + 1] = right_seed;
            }
            std::mem::swap(controls, child_controls);
            nodes *= 2;
        }
    }
}

/// Expands the subtree rooted at `state` breadth-first down to the leaves,
/// returning the leaf control bits left-to-right.
///
/// Convenience wrapper over [`expand_subtree_into`] with a fresh scratch;
/// hot paths should hold an [`EvalScratch`] (or a [`ScratchPool`]) and call
/// the `_into` form directly.
#[must_use]
pub fn expand_subtree(
    key: &DpfKey,
    state: NodeState,
    start_level: u32,
    prg: &LengthDoublingPrg,
) -> SelectorVector {
    let depth = key.domain_bits() - start_level;
    let mut scratch = EvalScratch::new();
    let mut out = SelectorVector::zeros(0);
    out.reserve_bits(1usize << depth);
    expand_subtree_into(key, state, start_level, prg, &mut scratch, &mut out);
    out
}

/// The original level-by-level subtree expansion, kept as the correctness
/// oracle for the zero-allocation pipeline and as the baseline the
/// `hotpath` benchmark times the new path against.
///
/// Functionally identical to [`expand_subtree`]; allocates two fresh
/// vectors (plus one `NodeExpansion` vector) per tree level.
#[must_use]
pub fn expand_subtree_reference(
    key: &DpfKey,
    state: NodeState,
    start_level: u32,
    prg: &LengthDoublingPrg,
) -> SelectorVector {
    let depth = key.domain_bits() - start_level;
    let mut seeds = vec![state.seed];
    let mut controls = vec![state.control];
    for level in start_level..key.domain_bits() {
        let cw = key.correction_words()[level as usize];
        let expansions = prg.expand_level(&seeds);
        let mut next_seeds = Vec::with_capacity(seeds.len() * 2);
        let mut next_controls = Vec::with_capacity(controls.len() * 2);
        for (expansion, control) in expansions.iter().zip(&controls) {
            let (mut left_seed, mut left_control) = (expansion.left.seed, expansion.left.control);
            let (mut right_seed, mut right_control) =
                (expansion.right.seed, expansion.right.control);
            if *control {
                left_seed ^= cw.seed;
                left_control ^= cw.control_left;
                right_seed ^= cw.seed;
                right_control ^= cw.control_right;
            }
            next_seeds.push(left_seed);
            next_seeds.push(right_seed);
            next_controls.push(left_control);
            next_controls.push(right_control);
        }
        seeds = next_seeds;
        controls = next_controls;
    }
    debug_assert_eq!(controls.len(), 1usize << depth);
    controls.into_iter().collect()
}

/// Evaluates the key over its entire domain, returning one selector bit per
/// index (the vector `v = [Eval(k,0), ..., Eval(k, N-1)]` of §2.3).
///
/// This is the straightforward level-by-level expansion; see
/// [`crate::parallel::EvalStrategy`] for the parallel/memory-bounded
/// variants the paper discusses.
#[must_use]
pub fn eval_full(key: &DpfKey) -> SelectorVector {
    let prg = LengthDoublingPrg::default();
    expand_subtree(key, NodeState::root(key), 0, &prg)
}

/// Evaluates the key over the index range `[start, start + count)`.
///
/// The range is decomposed into maximal aligned subtrees, each expanded
/// level-by-level; memory use is bounded by the largest aligned chunk
/// rather than the whole domain. This is what a single DPU-chunk evaluation
/// or a memory-bounded traversal builds on.
///
/// # Errors
///
/// Returns [`DpfError::InputOutOfDomain`] if the range extends past the
/// domain.
pub fn eval_range(key: &DpfKey, start: u64, count: u64) -> Result<SelectorVector, DpfError> {
    eval_range_with_prg(key, start, count, &LengthDoublingPrg::default())
}

/// [`eval_range`] with a caller-provided PRG.
///
/// # Errors
///
/// Returns [`DpfError::InputOutOfDomain`] if the range extends past the
/// domain.
pub fn eval_range_with_prg(
    key: &DpfKey,
    start: u64,
    count: u64,
    prg: &LengthDoublingPrg,
) -> Result<SelectorVector, DpfError> {
    let mut scratch = EvalScratch::new();
    let mut out = SelectorVector::zeros(0);
    eval_range_into(key, start, count, prg, &mut scratch, &mut out)?;
    Ok(out)
}

/// [`eval_range`] appending into a caller-owned output vector with
/// caller-owned scratch — the allocation-free form the batch pipeline's
/// evaluators use.
///
/// # Errors
///
/// Returns [`DpfError::InputOutOfDomain`] if the range extends past the
/// domain (including ranges whose `start + count` overflows `u64`).
pub fn eval_range_into(
    key: &DpfKey,
    start: u64,
    count: u64,
    prg: &LengthDoublingPrg,
    scratch: &mut EvalScratch,
    out: &mut SelectorVector,
) -> Result<(), DpfError> {
    let domain = key.domain_size();
    // `checked_add` so an adversarial `start + count` cannot wrap past the
    // bounds check.
    let end = match start.checked_add(count) {
        Some(end) if end <= domain => end,
        _ => {
            return Err(DpfError::InputOutOfDomain {
                input: start.saturating_add(count),
                domain_bits: key.domain_bits(),
            })
        }
    };
    if count == 0 {
        return Ok(());
    }
    out.reserve_bits(count as usize);
    let mut cursor = start;
    while cursor < end {
        // Largest power-of-two aligned subtree that starts at `cursor` and
        // fits within the remaining range.
        let alignment = if cursor == 0 {
            u64::MAX
        } else {
            1u64 << cursor.trailing_zeros()
        };
        let remaining = end - cursor;
        let mut chunk = alignment.min(remaining.next_power_of_two());
        while chunk > remaining {
            chunk /= 2;
        }
        let chunk_bits = chunk.trailing_zeros();
        let prefix_bits = key.domain_bits() - chunk_bits;
        let prefix = cursor >> chunk_bits;
        let state = eval_prefix(key, prefix, prefix_bits, prg)?;
        expand_subtree_into(key, state, prefix_bits, prg, scratch, out);
        cursor += chunk;
    }
    Ok(())
}

/// Number of PRG node expansions a full-domain, level-by-level evaluation
/// performs (`2^1 + 2^2 + … + 2^n ≈ 2N` halved because each expansion
/// produces both children ⇒ `N - 1` node expansions plus the root).
///
/// Used by the performance model to attribute the `Eval` phase cost.
#[must_use]
pub fn eval_full_prg_expansions(domain_bits: u32) -> u64 {
    (1u64 << domain_bits).saturating_sub(1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_keys;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn keypair(domain_bits: u32, alpha: u64, seed: u64) -> (DpfKey, DpfKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_keys(domain_bits, alpha, &mut rng).expect("valid parameters")
    }

    #[test]
    fn eval_full_matches_pointwise_eval() {
        let (k1, k2) = keypair(9, 300, 42);
        let full_1 = eval_full(&k1);
        let full_2 = eval_full(&k2);
        for x in 0..(1u64 << 9) {
            assert_eq!(full_1.get(x as usize), eval_point(&k1, x).unwrap());
            assert_eq!(full_2.get(x as usize), eval_point(&k2, x).unwrap());
        }
    }

    #[test]
    fn full_domain_shares_reconstruct_one_hot() {
        let (k1, k2) = keypair(11, 1234, 7);
        let mut combined = eval_full(&k1);
        combined.xor_assign(&eval_full(&k2));
        assert_eq!(combined.count_ones(), 1);
        assert!(combined.get(1234));
    }

    #[test]
    fn pipeline_matches_reference_expansion() {
        // The zero-allocation pipeline must be byte-identical to the
        // original level-by-level expansion on every subtree shape.
        let prg = LengthDoublingPrg::default();
        for domain_bits in 1..=10u32 {
            let (k1, k2) = keypair(
                domain_bits,
                (1u64 << domain_bits) - 1,
                17 + domain_bits as u64,
            );
            for key in [&k1, &k2] {
                for start_level in 0..=domain_bits {
                    let prefix = (1u64 << start_level) - 1;
                    let state = eval_prefix(key, prefix, start_level, &prg).unwrap();
                    let new = expand_subtree(key, state, start_level, &prg);
                    let reference = expand_subtree_reference(key, state, start_level, &prg);
                    assert_eq!(
                        new.words(),
                        reference.words(),
                        "domain_bits={domain_bits} start_level={start_level}"
                    );
                    assert_eq!(new.len(), reference.len());
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_queries_matches_fresh_scratch() {
        let prg = LengthDoublingPrg::default();
        let mut reused = EvalScratch::new();
        // Interleave domains of different sizes so the reused scratch sees
        // shrinking and growing subtrees with stale data in its buffers.
        for (domain_bits, alpha, seed) in [
            (10u32, 700u64, 1u64),
            (4, 9, 2),
            (12, 4000, 3),
            (4, 3, 4),
            (10, 0, 5),
        ] {
            let (k1, _) = keypair(domain_bits, alpha, seed);
            let mut from_reused = SelectorVector::zeros(0);
            eval_range_into(
                &k1,
                0,
                1 << domain_bits,
                &prg,
                &mut reused,
                &mut from_reused,
            )
            .unwrap();
            let mut fresh = EvalScratch::new();
            let mut from_fresh = SelectorVector::zeros(0);
            eval_range_into(&k1, 0, 1 << domain_bits, &prg, &mut fresh, &mut from_fresh).unwrap();
            assert_eq!(
                from_reused, from_fresh,
                "domain_bits={domain_bits} alpha={alpha}"
            );
        }
    }

    #[test]
    fn scratch_pool_hands_out_and_reclaims_scratches() {
        let pool = ScratchPool::new();
        assert_eq!(pool.idle_count(), 0);
        let (k1, _) = keypair(8, 100, 9);
        let prg = LengthDoublingPrg::default();
        for _ in 0..3 {
            let out = pool.with(|scratch| {
                let mut out = SelectorVector::zeros(0);
                eval_range_into(&k1, 0, 256, &prg, scratch, &mut out).unwrap();
                out
            });
            assert_eq!(out, eval_full(&k1));
        }
        // Sequential use warms up exactly one scratch.
        assert_eq!(pool.idle_count(), 1);
    }

    #[test]
    fn eval_range_matches_full_evaluation() {
        let (k1, _) = keypair(10, 600, 3);
        let full = eval_full(&k1);
        let prg = LengthDoublingPrg::default();
        for (start, count) in [
            (0u64, 1024u64),
            (0, 128),
            (128, 128),
            (100, 300),
            (1000, 24),
            (513, 1),
        ] {
            let range = eval_range_with_prg(&k1, start, count, &prg).unwrap();
            assert_eq!(range.len() as u64, count);
            for i in 0..count {
                assert_eq!(
                    range.get(i as usize),
                    full.get((start + i) as usize),
                    "start={start} count={count} i={i}"
                );
            }
        }
    }

    #[test]
    fn eval_range_rejects_out_of_domain() {
        let (k1, _) = keypair(8, 0, 1);
        assert!(eval_range(&k1, 200, 100).is_err());
        assert!(eval_range(&k1, 256, 1).is_err());
        assert!(eval_range(&k1, 0, 257).is_err());
    }

    #[test]
    fn eval_range_rejects_overflowing_ranges() {
        // `start + count` wrapping past zero must not sneak under the
        // bounds check.
        let (k1, _) = keypair(8, 0, 1);
        assert!(matches!(
            eval_range(&k1, u64::MAX, 2),
            Err(DpfError::InputOutOfDomain { .. })
        ));
        assert!(matches!(
            eval_range(&k1, u64::MAX - 5, 10),
            Err(DpfError::InputOutOfDomain { .. })
        ));
        assert!(matches!(
            eval_range(&k1, 2, u64::MAX - 1),
            Err(DpfError::InputOutOfDomain { .. })
        ));
    }

    #[test]
    fn eval_range_empty_is_empty() {
        let (k1, _) = keypair(8, 0, 1);
        assert!(eval_range(&k1, 17, 0).unwrap().is_empty());
    }

    #[test]
    fn eval_point_rejects_out_of_domain() {
        let (k1, _) = keypair(8, 0, 1);
        assert!(matches!(
            eval_point(&k1, 256),
            Err(DpfError::InputOutOfDomain { .. })
        ));
    }

    #[test]
    fn individual_shares_look_balanced() {
        // A single key's evaluation should be pseudorandom, i.e. roughly
        // half the bits set — a cheap sanity check that no key leaks the
        // query index through gross bias.
        let (k1, _) = keypair(12, 77, 99);
        let ones = eval_full(&k1).count_ones();
        let total = 1usize << 12;
        assert!(ones > total / 4 && ones < 3 * total / 4, "ones = {ones}");
    }

    #[test]
    fn expansion_accounting() {
        assert_eq!(eval_full_prg_expansions(1), 1);
        assert_eq!(eval_full_prg_expansions(10), 1023);
    }

    #[test]
    fn interleave_with_zeros_spreads_bits() {
        assert_eq!(interleave_with_zeros(0), 0);
        assert_eq!(interleave_with_zeros(1), 1);
        assert_eq!(interleave_with_zeros(0b10), 0b100);
        assert_eq!(interleave_with_zeros(0xFFFF_FFFF), 0x5555_5555_5555_5555);
        // High half of the input is ignored.
        assert_eq!(interleave_with_zeros(0xFFFF_FFFF_0000_0001), 1);
        for bit in 0..32u32 {
            assert_eq!(interleave_with_zeros(1u64 << bit), 1u64 << (2 * bit));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_shares_reconstruct_point(
            domain_bits in 1u32..12,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let domain = 1u64 << domain_bits;
            let alpha = rng.gen_range(0..domain);
            let (k1, k2) = generate_keys(domain_bits, alpha, &mut rng).unwrap();
            let mut combined = eval_full(&k1);
            combined.xor_assign(&eval_full(&k2));
            prop_assert_eq!(combined.count_ones(), 1);
            prop_assert!(combined.get(alpha as usize));
        }

        #[test]
        fn prop_eval_range_consistent_with_full(
            domain_bits in 3u32..11,
            seed in any::<u64>(),
            start_frac in 0.0f64..1.0,
            len_frac in 0.0f64..1.0,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let domain = 1u64 << domain_bits;
            let alpha = rng.gen_range(0..domain);
            let (k1, _) = generate_keys(domain_bits, alpha, &mut rng).unwrap();
            let start = (start_frac * domain as f64) as u64;
            let count = ((len_frac * (domain - start) as f64) as u64).min(domain - start);
            let full = eval_full(&k1);
            let range = eval_range(&k1, start, count).unwrap();
            for i in 0..count {
                prop_assert_eq!(range.get(i as usize), full.get((start + i) as usize));
            }
        }

        #[test]
        fn prop_pipeline_byte_identical_to_reference(
            domain_bits in 1u32..12,
            seed in any::<u64>(),
        ) {
            // The tentpole invariant: the new expand_level_into/EvalScratch
            // pipeline produces byte-identical selector words to the old
            // level-by-level expansion for random keys across domains.
            let mut rng = StdRng::seed_from_u64(seed);
            let domain = 1u64 << domain_bits;
            let alpha = rng.gen_range(0..domain);
            let (k1, k2) = generate_keys(domain_bits, alpha, &mut rng).unwrap();
            let prg = LengthDoublingPrg::default();
            for key in [&k1, &k2] {
                let root = NodeState::root(key);
                let new = expand_subtree(key, root, 0, &prg);
                let reference = expand_subtree_reference(key, root, 0, &prg);
                prop_assert_eq!(new.words(), reference.words());
            }
        }

        #[test]
        fn prop_scratch_reuse_equals_fresh_scratch(
            bits_a in 1u32..10,
            bits_b in 1u32..10,
            seed in any::<u64>(),
        ) {
            // Back-to-back queries of different domain sizes through one
            // scratch must match fresh-scratch evaluation.
            let mut rng = StdRng::seed_from_u64(seed);
            let prg = LengthDoublingPrg::default();
            let mut reused = EvalScratch::new();
            for bits in [bits_a, bits_b, bits_a] {
                let domain = 1u64 << bits;
                let alpha = rng.gen_range(0..domain);
                let (k, _) = generate_keys(bits, alpha, &mut rng).unwrap();
                let start = alpha / 2;
                let count = domain - start;
                let mut out = SelectorVector::zeros(0);
                eval_range_into(&k, start, count, &prg, &mut reused, &mut out).unwrap();
                let fresh = eval_range_with_prg(&k, start, count, &prg).unwrap();
                prop_assert_eq!(out, fresh);
            }
        }
    }
}
