//! DPF evaluation (`Eval`), run by each PIR server.
//!
//! Evaluating a key at a single index walks one root-to-leaf path of the
//! GGM computation tree (eqs. (1)–(3) of the paper); expanding the key over
//! the whole database domain — what the server actually does for every
//! query — is a full tree expansion whose parallelisation strategies live in
//! [`crate::parallel`].

use impir_crypto::prg::LengthDoublingPrg;
use impir_crypto::Block;

use crate::bitvec::SelectorVector;
use crate::error::DpfError;
use crate::key::DpfKey;

/// The evaluation state at one GGM node: the pseudorandom seed and the
/// party's control bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeState {
    /// The node's pseudorandom seed (low bit cleared).
    pub seed: Block,
    /// The party's control bit at this node.
    pub control: bool,
}

impl NodeState {
    /// The root state encoded in a key.
    #[must_use]
    pub fn root(key: &DpfKey) -> NodeState {
        NodeState {
            seed: key.root_seed(),
            control: key.root_control(),
        }
    }
}

/// Advances a node state one level down the tree, following `bit`.
///
/// Applies the level's correction word when the current control bit is set,
/// exactly as in the BGI evaluation procedure.
#[must_use]
pub fn step(
    key: &DpfKey,
    state: NodeState,
    level: usize,
    bit: bool,
    prg: &LengthDoublingPrg,
) -> NodeState {
    let expansion = prg.expand_one(state.seed, bit);
    let cw = key.correction_words()[level];
    if state.control {
        NodeState {
            seed: expansion.seed ^ cw.seed,
            control: expansion.control
                ^ if bit {
                    cw.control_right
                } else {
                    cw.control_left
                },
        }
    } else {
        NodeState {
            seed: expansion.seed,
            control: expansion.control,
        }
    }
}

/// Expands a node state into both children at `level`.
#[must_use]
pub fn step_both(
    key: &DpfKey,
    state: NodeState,
    level: usize,
    prg: &LengthDoublingPrg,
) -> (NodeState, NodeState) {
    let expansion = prg.expand(state.seed);
    let cw = key.correction_words()[level];
    let (mut left, mut right) = (
        NodeState {
            seed: expansion.left.seed,
            control: expansion.left.control,
        },
        NodeState {
            seed: expansion.right.seed,
            control: expansion.right.control,
        },
    );
    if state.control {
        left.seed ^= cw.seed;
        left.control ^= cw.control_left;
        right.seed ^= cw.seed;
        right.control ^= cw.control_right;
    }
    (left, right)
}

/// Evaluates the key at a single domain point.
///
/// `Eval(k, x)` returns this party's share of `P_{α,1}(x)`; XORing both
/// parties' shares yields 1 exactly when `x = α`.
///
/// # Errors
///
/// Returns [`DpfError::InputOutOfDomain`] if `x` does not fit in the key's
/// domain.
///
/// # Example
///
/// ```
/// use impir_dpf::{gen::generate_keys, eval::eval_point};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let (k1, k2) = generate_keys(6, 9, &mut rng)?;
/// assert!(eval_point(&k1, 9)? ^ eval_point(&k2, 9)?);
/// assert!(!(eval_point(&k1, 8)? ^ eval_point(&k2, 8)?));
/// # Ok::<(), impir_dpf::DpfError>(())
/// ```
pub fn eval_point(key: &DpfKey, x: u64) -> Result<bool, DpfError> {
    eval_point_with_prg(key, x, &LengthDoublingPrg::default())
}

/// [`eval_point`] with a caller-provided PRG (avoids re-expanding the fixed
/// AES keys in tight loops).
///
/// # Errors
///
/// Returns [`DpfError::InputOutOfDomain`] if `x` does not fit in the key's
/// domain.
pub fn eval_point_with_prg(
    key: &DpfKey,
    x: u64,
    prg: &LengthDoublingPrg,
) -> Result<bool, DpfError> {
    let domain_bits = key.domain_bits();
    if domain_bits < 64 && x >= (1u64 << domain_bits) {
        return Err(DpfError::InputOutOfDomain {
            input: x,
            domain_bits,
        });
    }
    let mut state = NodeState::root(key);
    for level in 0..domain_bits {
        let bit = (x >> (domain_bits - 1 - level)) & 1 == 1;
        state = step(key, state, level as usize, bit, prg);
    }
    Ok(state.control)
}

/// Walks from the root down `prefix_bits` levels following `prefix`
/// (MSB-first), returning the state of the interior node that roots the
/// subtree of all leaves sharing that prefix.
///
/// This is the entry point for chunked ("memory-bounded") and subtree-
/// parallel full-domain evaluation: a worker first positions itself at its
/// subtree root, then expands only that subtree.
///
/// # Errors
///
/// Returns [`DpfError::InputOutOfDomain`] if `prefix_bits` exceeds the
/// key's depth or the prefix has bits above `prefix_bits`.
pub fn eval_prefix(
    key: &DpfKey,
    prefix: u64,
    prefix_bits: u32,
    prg: &LengthDoublingPrg,
) -> Result<NodeState, DpfError> {
    if prefix_bits > key.domain_bits() {
        return Err(DpfError::InputOutOfDomain {
            input: prefix,
            domain_bits: key.domain_bits(),
        });
    }
    if prefix_bits < 64 && prefix >= (1u64 << prefix_bits) {
        return Err(DpfError::InputOutOfDomain {
            input: prefix,
            domain_bits: prefix_bits,
        });
    }
    let mut state = NodeState::root(key);
    for level in 0..prefix_bits {
        let bit = (prefix >> (prefix_bits - 1 - level)) & 1 == 1;
        state = step(key, state, level as usize, bit, prg);
    }
    Ok(state)
}

/// Expands the subtree rooted at `state` (which sits `start_level` levels
/// below the root) breadth-first down to the leaves, returning the leaf
/// control bits left-to-right.
///
/// The expansion works level-by-level so PRG calls are batched per level,
/// mirroring the paper's AES-NI batching optimisation.
#[must_use]
pub fn expand_subtree(
    key: &DpfKey,
    state: NodeState,
    start_level: u32,
    prg: &LengthDoublingPrg,
) -> SelectorVector {
    let depth = key.domain_bits() - start_level;
    let mut seeds = vec![state.seed];
    let mut controls = vec![state.control];
    for level in start_level..key.domain_bits() {
        let cw = key.correction_words()[level as usize];
        let expansions = prg.expand_level(&seeds);
        let mut next_seeds = Vec::with_capacity(seeds.len() * 2);
        let mut next_controls = Vec::with_capacity(controls.len() * 2);
        for (expansion, control) in expansions.iter().zip(&controls) {
            let (mut left_seed, mut left_control) = (expansion.left.seed, expansion.left.control);
            let (mut right_seed, mut right_control) =
                (expansion.right.seed, expansion.right.control);
            if *control {
                left_seed ^= cw.seed;
                left_control ^= cw.control_left;
                right_seed ^= cw.seed;
                right_control ^= cw.control_right;
            }
            next_seeds.push(left_seed);
            next_seeds.push(right_seed);
            next_controls.push(left_control);
            next_controls.push(right_control);
        }
        seeds = next_seeds;
        controls = next_controls;
    }
    debug_assert_eq!(controls.len(), 1usize << depth);
    controls.into_iter().collect()
}

/// Evaluates the key over its entire domain, returning one selector bit per
/// index (the vector `v = [Eval(k,0), ..., Eval(k, N-1)]` of §2.3).
///
/// This is the straightforward level-by-level expansion; see
/// [`crate::parallel::EvalStrategy`] for the parallel/memory-bounded
/// variants the paper discusses.
#[must_use]
pub fn eval_full(key: &DpfKey) -> SelectorVector {
    let prg = LengthDoublingPrg::default();
    expand_subtree(key, NodeState::root(key), 0, &prg)
}

/// Evaluates the key over the index range `[start, start + count)`.
///
/// The range is decomposed into maximal aligned subtrees, each expanded
/// level-by-level; memory use is bounded by the largest aligned chunk
/// rather than the whole domain. This is what a single DPU-chunk evaluation
/// or a memory-bounded traversal builds on.
///
/// # Errors
///
/// Returns [`DpfError::InputOutOfDomain`] if the range extends past the
/// domain.
pub fn eval_range(key: &DpfKey, start: u64, count: u64) -> Result<SelectorVector, DpfError> {
    eval_range_with_prg(key, start, count, &LengthDoublingPrg::default())
}

/// [`eval_range`] with a caller-provided PRG.
///
/// # Errors
///
/// Returns [`DpfError::InputOutOfDomain`] if the range extends past the
/// domain.
pub fn eval_range_with_prg(
    key: &DpfKey,
    start: u64,
    count: u64,
    prg: &LengthDoublingPrg,
) -> Result<SelectorVector, DpfError> {
    let domain = key.domain_size();
    if start + count > domain {
        return Err(DpfError::InputOutOfDomain {
            input: start + count,
            domain_bits: key.domain_bits(),
        });
    }
    if count == 0 {
        return Ok(SelectorVector::zeros(0));
    }

    let mut out = SelectorVector::zeros(0);
    let mut cursor = start;
    let end = start + count;
    while cursor < end {
        // Largest power-of-two aligned subtree that starts at `cursor` and
        // fits within the remaining range.
        let alignment = if cursor == 0 {
            u64::MAX
        } else {
            1u64 << cursor.trailing_zeros()
        };
        let remaining = end - cursor;
        let mut chunk = alignment.min(remaining.next_power_of_two());
        while chunk > remaining {
            chunk /= 2;
        }
        let chunk_bits = chunk.trailing_zeros();
        let prefix_bits = key.domain_bits() - chunk_bits;
        let prefix = cursor >> chunk_bits;
        let state = eval_prefix(key, prefix, prefix_bits, prg)?;
        let subtree = expand_subtree(key, state, prefix_bits, prg);
        out.extend(subtree.iter());
        cursor += chunk;
    }
    Ok(out)
}

/// Number of PRG node expansions a full-domain, level-by-level evaluation
/// performs (`2^1 + 2^2 + … + 2^n ≈ 2N` halved because each expansion
/// produces both children ⇒ `N - 1` node expansions plus the root).
///
/// Used by the performance model to attribute the `Eval` phase cost.
#[must_use]
pub fn eval_full_prg_expansions(domain_bits: u32) -> u64 {
    (1u64 << domain_bits).saturating_sub(1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_keys;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn keypair(domain_bits: u32, alpha: u64, seed: u64) -> (DpfKey, DpfKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_keys(domain_bits, alpha, &mut rng).expect("valid parameters")
    }

    #[test]
    fn eval_full_matches_pointwise_eval() {
        let (k1, k2) = keypair(9, 300, 42);
        let full_1 = eval_full(&k1);
        let full_2 = eval_full(&k2);
        for x in 0..(1u64 << 9) {
            assert_eq!(full_1.get(x as usize), eval_point(&k1, x).unwrap());
            assert_eq!(full_2.get(x as usize), eval_point(&k2, x).unwrap());
        }
    }

    #[test]
    fn full_domain_shares_reconstruct_one_hot() {
        let (k1, k2) = keypair(11, 1234, 7);
        let mut combined = eval_full(&k1);
        combined.xor_assign(&eval_full(&k2));
        assert_eq!(combined.count_ones(), 1);
        assert!(combined.get(1234));
    }

    #[test]
    fn eval_range_matches_full_evaluation() {
        let (k1, _) = keypair(10, 600, 3);
        let full = eval_full(&k1);
        let prg = LengthDoublingPrg::default();
        for (start, count) in [
            (0u64, 1024u64),
            (0, 128),
            (128, 128),
            (100, 300),
            (1000, 24),
            (513, 1),
        ] {
            let range = eval_range_with_prg(&k1, start, count, &prg).unwrap();
            assert_eq!(range.len() as u64, count);
            for i in 0..count {
                assert_eq!(
                    range.get(i as usize),
                    full.get((start + i) as usize),
                    "start={start} count={count} i={i}"
                );
            }
        }
    }

    #[test]
    fn eval_range_rejects_out_of_domain() {
        let (k1, _) = keypair(8, 0, 1);
        assert!(eval_range(&k1, 200, 100).is_err());
        assert!(eval_range(&k1, 256, 1).is_err());
        assert!(eval_range(&k1, 0, 257).is_err());
    }

    #[test]
    fn eval_range_empty_is_empty() {
        let (k1, _) = keypair(8, 0, 1);
        assert!(eval_range(&k1, 17, 0).unwrap().is_empty());
    }

    #[test]
    fn eval_point_rejects_out_of_domain() {
        let (k1, _) = keypair(8, 0, 1);
        assert!(matches!(
            eval_point(&k1, 256),
            Err(DpfError::InputOutOfDomain { .. })
        ));
    }

    #[test]
    fn individual_shares_look_balanced() {
        // A single key's evaluation should be pseudorandom, i.e. roughly
        // half the bits set — a cheap sanity check that no key leaks the
        // query index through gross bias.
        let (k1, _) = keypair(12, 77, 99);
        let ones = eval_full(&k1).count_ones();
        let total = 1usize << 12;
        assert!(ones > total / 4 && ones < 3 * total / 4, "ones = {ones}");
    }

    #[test]
    fn expansion_accounting() {
        assert_eq!(eval_full_prg_expansions(1), 1);
        assert_eq!(eval_full_prg_expansions(10), 1023);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_shares_reconstruct_point(
            domain_bits in 1u32..12,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let domain = 1u64 << domain_bits;
            let alpha = rng.gen_range(0..domain);
            let (k1, k2) = generate_keys(domain_bits, alpha, &mut rng).unwrap();
            let mut combined = eval_full(&k1);
            combined.xor_assign(&eval_full(&k2));
            prop_assert_eq!(combined.count_ones(), 1);
            prop_assert!(combined.get(alpha as usize));
        }

        #[test]
        fn prop_eval_range_consistent_with_full(
            domain_bits in 3u32..11,
            seed in any::<u64>(),
            start_frac in 0.0f64..1.0,
            len_frac in 0.0f64..1.0,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let domain = 1u64 << domain_bits;
            let alpha = rng.gen_range(0..domain);
            let (k1, _) = generate_keys(domain_bits, alpha, &mut rng).unwrap();
            let start = (start_frac * domain as f64) as u64;
            let count = ((len_frac * (domain - start) as f64) as u64).min(domain - start);
            let full = eval_full(&k1);
            let range = eval_range(&k1, start, count).unwrap();
            for i in 0..count {
                prop_assert_eq!(range.get(i as usize), full.get((start + i) as usize));
            }
        }
    }
}
