//! The naive XOR-shared one-hot query scheme (paper §2.3, Figure 2).
//!
//! Before introducing DPFs, the paper explains two-server PIR with the
//! simplest possible query encoding: the client samples a uniformly random
//! bit-vector `v1` and sets `v2 = v1 ⊕ e_i` (the one-hot vector for index
//! `i`). Each vector individually is uniform and leaks nothing; together
//! they reconstruct the selector. Key size is `O(N)` instead of the DPF's
//! `O(λ log N)`, so this scheme is only practical for small databases — the
//! workspace uses it as a pedagogical example and as a correctness oracle
//! for the DPF-based path.

use rand::Rng;

use crate::bitvec::SelectorVector;
use crate::error::DpfError;
use crate::point_function::PointFunction;

/// A pair of XOR shares of a one-hot selector vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveQueryShares {
    /// The share sent to server 1.
    pub server1: SelectorVector,
    /// The share sent to server 2.
    pub server2: SelectorVector,
}

impl NaiveQueryShares {
    /// Reconstructs the underlying selector vector (client-side/debugging
    /// only — a real deployment never holds both shares in one place except
    /// at the client).
    #[must_use]
    pub fn reconstruct(&self) -> SelectorVector {
        let mut combined = self.server1.clone();
        combined.xor_assign(&self.server2);
        combined
    }
}

/// Generates naive XOR query shares selecting `index` out of `domain_size`
/// records.
///
/// # Errors
///
/// Returns [`DpfError::PointOutOfDomain`] if `index >= domain_size`.
///
/// # Example
///
/// ```
/// use impir_dpf::naive::generate_shares;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(4);
/// let shares = generate_shares(16, 5, &mut rng)?;
/// let selector = shares.reconstruct();
/// assert_eq!(selector.count_ones(), 1);
/// assert!(selector.get(5));
/// # Ok::<(), impir_dpf::DpfError>(())
/// ```
pub fn generate_shares<R: Rng + ?Sized>(
    domain_size: u64,
    index: u64,
    rng: &mut R,
) -> Result<NaiveQueryShares, DpfError> {
    if index >= domain_size {
        return Err(DpfError::PointOutOfDomain {
            alpha: index,
            domain_bits: 64 - domain_size.leading_zeros(),
        });
    }
    let mut server1 = SelectorVector::zeros(domain_size as usize);
    let mut server2 = SelectorVector::zeros(domain_size as usize);
    for position in 0..domain_size as usize {
        let random_bit: bool = rng.gen();
        server1.set(position, random_bit);
        let selector_bit = PointFunction::selector(index).eval(position as u64);
        server2.set(position, random_bit ^ selector_bit);
    }
    Ok(NaiveQueryShares { server1, server2 })
}

/// Size in bytes of one naive share for a database of `domain_size`
/// records — the `O(N)` upload cost that motivates DPF-based queries.
#[must_use]
pub fn share_size_bytes(domain_size: u64) -> u64 {
    domain_size.div_ceil(8)
}

/// Generates naive XOR query shares for `parties ≥ 2` servers.
///
/// This is the straightforward generalisation the paper alludes to in §3
/// ("the details are easily generalizable to multi-server PIR constructions
/// where n > 2"): the first `parties − 1` shares are uniformly random and
/// the last one is chosen so that the XOR of all shares is the one-hot
/// selector for `index`. Privacy holds as long as at least one server does
/// not collude with the others.
///
/// # Errors
///
/// * [`DpfError::PointOutOfDomain`] if `index >= domain_size`;
/// * [`DpfError::InvalidDomain`] if `parties < 2`.
pub fn generate_multi_party_shares<R: Rng + ?Sized>(
    domain_size: u64,
    index: u64,
    parties: usize,
    rng: &mut R,
) -> Result<Vec<SelectorVector>, DpfError> {
    if parties < 2 {
        return Err(DpfError::InvalidDomain {
            domain_bits: parties as u32,
        });
    }
    if index >= domain_size {
        return Err(DpfError::PointOutOfDomain {
            alpha: index,
            domain_bits: 64 - domain_size.leading_zeros(),
        });
    }
    let mut shares: Vec<SelectorVector> = (0..parties - 1)
        .map(|_| (0..domain_size).map(|_| rng.gen::<bool>()).collect())
        .collect();
    // The last share makes the XOR of all shares equal the one-hot vector.
    let mut last = SelectorVector::zeros(domain_size as usize);
    for position in 0..domain_size {
        let mut bit = PointFunction::selector(index).eval(position);
        for share in &shares {
            bit ^= share.get(position as usize);
        }
        last.set(position as usize, bit);
    }
    shares.push(last);
    Ok(shares)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shares_reconstruct_one_hot() {
        let mut rng = StdRng::seed_from_u64(10);
        let shares = generate_shares(100, 42, &mut rng).unwrap();
        let selector = shares.reconstruct();
        assert_eq!(selector.count_ones(), 1);
        assert!(selector.get(42));
    }

    #[test]
    fn rejects_out_of_range_index() {
        let mut rng = StdRng::seed_from_u64(10);
        assert!(generate_shares(10, 10, &mut rng).is_err());
    }

    #[test]
    fn individual_share_is_not_one_hot_in_general() {
        // With overwhelming probability a random share has ≈ N/2 ones.
        let mut rng = StdRng::seed_from_u64(1);
        let shares = generate_shares(512, 3, &mut rng).unwrap();
        assert!(shares.server1.count_ones() > 100);
        assert!(shares.server1.count_ones() < 412);
    }

    #[test]
    fn share_size_grows_linearly() {
        assert_eq!(share_size_bytes(8), 1);
        assert_eq!(share_size_bytes(9), 2);
        assert_eq!(share_size_bytes(1 << 20), 128 * 1024);
    }

    #[test]
    fn multi_party_shares_reconstruct_one_hot() {
        let mut rng = StdRng::seed_from_u64(4);
        for parties in 2..=6usize {
            let shares = generate_multi_party_shares(200, 123, parties, &mut rng).unwrap();
            assert_eq!(shares.len(), parties);
            let mut combined = SelectorVector::zeros(200);
            for share in &shares {
                combined.xor_assign(share);
            }
            assert_eq!(combined.count_ones(), 1, "parties={parties}");
            assert!(combined.get(123));
        }
    }

    #[test]
    fn multi_party_rejects_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(generate_multi_party_shares(10, 3, 1, &mut rng).is_err());
        assert!(generate_multi_party_shares(10, 10, 3, &mut rng).is_err());
    }

    #[test]
    fn two_party_multi_share_matches_pairwise_scheme_semantics() {
        let mut rng = StdRng::seed_from_u64(9);
        let shares = generate_multi_party_shares(64, 7, 2, &mut rng).unwrap();
        let mut combined = shares[0].clone();
        combined.xor_assign(&shares[1]);
        assert_eq!(combined.count_ones(), 1);
        assert!(combined.get(7));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_multi_party_reconstruction(
            domain_size in 1u64..600,
            parties in 2usize..6,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let index = seed % domain_size;
            let shares =
                generate_multi_party_shares(domain_size, index, parties, &mut rng).unwrap();
            let mut combined = SelectorVector::zeros(domain_size as usize);
            for share in &shares {
                combined.xor_assign(share);
            }
            prop_assert_eq!(combined.count_ones(), 1);
            prop_assert!(combined.get(index as usize));
        }

        #[test]
        fn prop_reconstruction_selects_requested_index(
            domain_size in 1u64..2000,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let index = rand::Rng::gen_range(&mut rng, 0..domain_size);
            let shares = generate_shares(domain_size, index, &mut rng).unwrap();
            let selector = shares.reconstruct();
            prop_assert_eq!(selector.count_ones(), 1);
            prop_assert!(selector.get(index as usize));
        }
    }
}
