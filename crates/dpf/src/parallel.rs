//! Full-domain DPF evaluation strategies (paper §3.2, Figure 7).
//!
//! Expanding a DPF key over the whole database domain is the "Eval" phase
//! of every PIR query and, once the `dpXOR` scan has been offloaded to PIM,
//! becomes the dominant server-side cost (Table 1: 76.45 % of IM-PIR's
//! latency). The paper weighs four ways of parallelising it:
//!
//! * **branch-parallel** — every worker walks from the root to its own
//!   leaves, recomputing the shared path (wasteful: `O(N log N)` PRG calls,
//!   and infeasible on DPUs because of the 64 KB WRAM);
//! * **level-by-level** — a single breadth-first sweep storing a whole tree
//!   level (`O(N)` PRG calls but `O(N)` intermediate memory and, on PIM,
//!   prohibitive inter-DPU communication);
//! * **memory-bounded traversal** — the level-by-level sweep restricted to
//!   fixed-size chunks of leaves (the GPU-PIR approach of the paper's
//!   reference [62]);
//! * **subtree-parallel** — the strategy IM-PIR uses on the host CPU: a
//!   master thread expands the top of the tree down to level `L = log2(T)`,
//!   then `T` worker threads expand their perfect subtrees independently,
//!   batching AES calls per level.
//!
//! All four produce identical selector vectors; they differ only in cost.
//!
//! # Execution model
//!
//! Every strategy expands subtrees through the zero-allocation
//! [`EvalScratch`](crate::eval::EvalScratch) pipeline of [`crate::eval`].
//! Two entry points trade parallelism against buffer reuse:
//!
//! * [`EvalStrategy::eval_full`] / [`EvalStrategy::eval_range`] optimise
//!   **single-query latency**: the subtree-parallel strategy fans its
//!   perfect subtrees out over real `std::thread::scope` worker threads
//!   (the vendored rayon shim is sequential, so data-parallel iterators
//!   would not actually parallelise — see ROADMAP), each worker expanding
//!   through its own scratch;
//! * [`EvalStrategy::eval_range_with_scratch`] optimises **steady-state
//!   batch throughput**: it runs on the calling thread reusing one
//!   caller-owned scratch, because the batch pipeline already runs one
//!   evaluation per stage-1 worker thread — spawning nested threads there
//!   would oversubscribe the host, and per-query scratch reuse is what
//!   makes batch serving allocation-free.

use impir_crypto::prg::LengthDoublingPrg;
use serde::{Deserialize, Serialize};

use crate::bitvec::SelectorVector;
use crate::error::DpfError;
use crate::eval::{
    eval_point_with_prg, eval_prefix, eval_range_into, eval_range_with_prg, expand_subtree,
    expand_subtree_into, EvalScratch, NodeState,
};
use crate::key::DpfKey;

/// Default chunk size (in leaves) for the memory-bounded traversal,
/// matching the 8 K-node chunks used by the GPU-PIR reference
/// implementation.
pub const DEFAULT_CHUNK_BITS: u32 = 13;

/// Number of hardware threads available to this process
/// (`std::thread::available_parallelism`, 1 if unknown) — the single
/// definition every thread-count default in the workspace derives from.
///
/// The vendored rayon shim is sequential, so `rayon::current_num_threads`
/// says nothing about real parallelism here; thread-level parallelism comes
/// exclusively from explicit `std::thread::scope` fan-outs sized by this
/// function.
#[must_use]
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// How a server expands a DPF key over the full database domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EvalStrategy {
    /// Each leaf (or leaf range) is computed from the root independently.
    ///
    /// Simple and embarrassingly parallel but performs `O(N log N)` PRG
    /// expansions; §3.2 rules it out for DPUs (WRAM too small) and the
    /// host only keeps it as a correctness oracle.
    BranchParallel,
    /// One sequential breadth-first expansion holding an entire level in
    /// memory.
    LevelByLevel,
    /// Breadth-first expansion over aligned chunks of `2^chunk_bits`
    /// leaves, bounding intermediate memory (the approach of the paper's
    /// GPU reference [62]).
    MemoryBounded {
        /// log2 of the chunk size in leaves.
        chunk_bits: u32,
    },
    /// IM-PIR's host-side strategy: expand the top of the tree to level
    /// `log2(threads)`, then evaluate each perfect subtree on its own
    /// worker thread.
    SubtreeParallel {
        /// Number of worker threads / subtrees (rounded up to a power of
        /// two).
        threads: usize,
    },
}

impl Default for EvalStrategy {
    fn default() -> Self {
        EvalStrategy::SubtreeParallel {
            threads: host_parallelism(),
        }
    }
}

impl EvalStrategy {
    /// A short, stable name for reports and benchmark labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EvalStrategy::BranchParallel => "branch-parallel",
            EvalStrategy::LevelByLevel => "level-by-level",
            EvalStrategy::MemoryBounded { .. } => "memory-bounded",
            EvalStrategy::SubtreeParallel { .. } => "subtree-parallel",
        }
    }

    /// Evaluates `key` over its whole domain with this strategy.
    #[must_use]
    pub fn eval_full(&self, key: &DpfKey) -> SelectorVector {
        let prg = LengthDoublingPrg::default();
        self.eval_full_with_prg(key, &prg)
    }

    /// [`EvalStrategy::eval_full`] with a caller-provided PRG.
    #[must_use]
    pub fn eval_full_with_prg(&self, key: &DpfKey, prg: &LengthDoublingPrg) -> SelectorVector {
        let domain = key.domain_size();
        match *self {
            EvalStrategy::BranchParallel => (0..domain)
                .map(|x| eval_point_with_prg(key, x, prg).expect("x is within the key's domain"))
                .collect(),
            EvalStrategy::LevelByLevel => expand_subtree(key, NodeState::root(key), 0, prg),
            EvalStrategy::MemoryBounded { .. } => self
                .eval_range(key, 0, domain)
                .expect("the full domain is in range"),
            EvalStrategy::SubtreeParallel { threads } => eval_subtree_parallel(key, threads, prg),
        }
    }

    /// Evaluates `key` over `[start, start + count)` with this strategy.
    ///
    /// Only the subtree-parallel strategy parallelises ranges (over real
    /// scoped worker threads, one scratch each); the others run the
    /// sequential chunked walk, which is what the paper's description
    /// implies (ranges are already per-DPU slices).
    ///
    /// # Errors
    ///
    /// Returns [`DpfError::InputOutOfDomain`] if the range leaves the
    /// key's domain.
    pub fn eval_range(
        &self,
        key: &DpfKey,
        start: u64,
        count: u64,
    ) -> Result<SelectorVector, DpfError> {
        // Validate once up front (overflow-proof), so the per-worker chunk
        // arithmetic below can never wrap: after this check every offset
        // the workers compute stays within `domain ≤ 2^MAX_DOMAIN_BITS`.
        check_range(key, start, count)?;
        let prg = LengthDoublingPrg::default();
        match *self {
            EvalStrategy::SubtreeParallel { threads } if threads > 1 && count > 1 => {
                let workers = threads.min(count as usize);
                let per_worker = count.div_ceil(workers as u64);
                let parts: Vec<Result<SelectorVector, DpfError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers as u64)
                        .map(|w| {
                            let prg = &prg;
                            scope.spawn(move || {
                                let chunk_start = start + w * per_worker;
                                let chunk_count =
                                    per_worker.min(count.saturating_sub(w * per_worker));
                                eval_range_with_prg(key, chunk_start, chunk_count, prg)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|handle| handle.join().expect("range worker panicked"))
                        .collect()
                });
                let parts: Result<Vec<SelectorVector>, DpfError> = parts.into_iter().collect();
                Ok(SelectorVector::concat(&parts?))
            }
            _ => {
                let mut scratch = EvalScratch::new();
                self.eval_range_with_scratch(key, start, count, &prg, &mut scratch)
            }
        }
    }

    /// [`EvalStrategy::eval_range`] on the calling thread, reusing a
    /// caller-owned scratch — the allocation-free form the batch pipeline's
    /// stage-1 workers evaluate through (see the module docs for when to
    /// prefer which entry point).
    ///
    /// All strategies produce identical selector vectors; here they differ
    /// only in traversal order and scratch footprint. The subtree-parallel
    /// strategy walks its subtrees sequentially on this thread: across-
    /// query parallelism is the pipeline's job.
    ///
    /// # Errors
    ///
    /// Returns [`DpfError::InputOutOfDomain`] if the range leaves the
    /// key's domain.
    pub fn eval_range_with_scratch(
        &self,
        key: &DpfKey,
        start: u64,
        count: u64,
        prg: &LengthDoublingPrg,
        scratch: &mut EvalScratch,
    ) -> Result<SelectorVector, DpfError> {
        // Validate before reserving: an adversarial `count` must come back
        // as an error, not as an attempt to reserve 2^64 bits.
        check_range(key, start, count)?;
        let end = start + count;
        let mut out = SelectorVector::zeros(0);
        out.reserve_bits(count as usize);
        match *self {
            EvalStrategy::BranchParallel => {
                for x in start..end {
                    out.push(eval_point_with_prg(key, x, prg)?);
                }
            }
            EvalStrategy::MemoryBounded { chunk_bits } => {
                let chunk_bits = chunk_bits.min(key.domain_bits());
                let chunk = 1u64 << chunk_bits;
                let mut cursor = start;
                while cursor < end {
                    let step = chunk.min(end - cursor);
                    eval_range_into(key, cursor, step, prg, scratch, &mut out)?;
                    cursor += step;
                }
            }
            EvalStrategy::LevelByLevel | EvalStrategy::SubtreeParallel { .. } => {
                eval_range_into(key, start, count, prg, scratch, &mut out)?;
            }
        }
        Ok(out)
    }

    /// Number of PRG node expansions this strategy performs for a
    /// full-domain evaluation — the quantity the performance model charges
    /// for the Eval phase.
    #[must_use]
    pub fn prg_expansions(&self, domain_bits: u32) -> u64 {
        let leaves = 1u64 << domain_bits;
        match *self {
            // Every leaf walks the full depth.
            EvalStrategy::BranchParallel => leaves * u64::from(domain_bits),
            // One expansion per interior node.
            EvalStrategy::LevelByLevel => leaves.saturating_sub(1).max(1),
            EvalStrategy::MemoryBounded { chunk_bits } => {
                let chunk_bits = chunk_bits.min(domain_bits);
                let chunks = leaves >> chunk_bits;
                let per_chunk_path = u64::from(domain_bits - chunk_bits);
                let per_chunk_subtree = (1u64 << chunk_bits) - 1;
                chunks * (per_chunk_path + per_chunk_subtree.max(1))
            }
            EvalStrategy::SubtreeParallel { threads } => {
                let level = subtree_level(threads, domain_bits);
                let top = (1u64 << level) - 1;
                let subtrees = 1u64 << level;
                let per_subtree = (1u64 << (domain_bits - level)) - 1;
                top + subtrees * per_subtree.max(1)
            }
        }
    }
}

/// Overflow-proof range validation shared by every strategy entry point:
/// rejects any `[start, start + count)` that wraps `u64` or leaves the
/// key's domain.
fn check_range(key: &DpfKey, start: u64, count: u64) -> Result<(), DpfError> {
    match start.checked_add(count) {
        Some(end) if end <= key.domain_size() => Ok(()),
        _ => Err(DpfError::InputOutOfDomain {
            input: start.saturating_add(count),
            domain_bits: key.domain_bits(),
        }),
    }
}

/// The tree level at which subtree-parallel evaluation hands over to
/// worker threads: `L = ceil(log2(threads))`, clamped to the tree depth.
#[must_use]
pub fn subtree_level(threads: usize, domain_bits: u32) -> u32 {
    let level = usize::BITS - threads.next_power_of_two().leading_zeros() - 1;
    level.min(domain_bits)
}

/// Subtree-parallel full-domain evaluation on real scoped threads: the
/// master thread positions each perfect subtree's root, then at most
/// `threads` worker threads split the subtrees among themselves (the
/// subtree count rounds `threads` up to a power of two, so a worker may
/// expand two subtrees back to back through one [`EvalScratch`] — never
/// more OS threads than the caller budgeted). The parts concatenate
/// word-wise: every part is a run of power-of-two subtrees, so parts of
/// 64+ leaves merge with plain word copies.
fn eval_subtree_parallel(key: &DpfKey, threads: usize, prg: &LengthDoublingPrg) -> SelectorVector {
    let level = subtree_level(threads, key.domain_bits());
    if level == 0 {
        return expand_subtree(key, NodeState::root(key), 0, prg);
    }
    // Master thread: walk to every subtree root (the top of the tree is
    // tiny — at most `2 * threads` paths of length `level`).
    let subtree_count = 1usize << level;
    let roots: Vec<NodeState> = (0..subtree_count as u64)
        .map(|prefix| {
            eval_prefix(key, prefix, level, prg).expect("prefix is within the key's domain")
        })
        .collect();

    // Worker threads: each expands its contiguous run of subtrees.
    let workers = threads.min(subtree_count);
    let per_worker = subtree_count.div_ceil(workers);
    let subtree_leaves = 1usize << (key.domain_bits() - level);
    let parts: Vec<SelectorVector> = std::thread::scope(|scope| {
        let handles: Vec<_> = roots
            .chunks(per_worker)
            .map(|worker_roots| {
                scope.spawn(move || {
                    let mut scratch = EvalScratch::new();
                    let mut part = SelectorVector::zeros(0);
                    part.reserve_bits(worker_roots.len() * subtree_leaves);
                    for state in worker_roots {
                        expand_subtree_into(key, *state, level, prg, &mut scratch, &mut part);
                    }
                    part
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("subtree worker panicked"))
            .collect()
    });
    SelectorVector::concat(&parts)
}

/// All strategies, at a configuration suitable for comparisons in tests and
/// benchmarks.
#[must_use]
pub fn all_strategies(threads: usize) -> Vec<EvalStrategy> {
    vec![
        EvalStrategy::BranchParallel,
        EvalStrategy::LevelByLevel,
        EvalStrategy::MemoryBounded {
            chunk_bits: DEFAULT_CHUNK_BITS,
        },
        EvalStrategy::SubtreeParallel { threads },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_full;
    use crate::gen::generate_keys;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn keypair(domain_bits: u32, alpha: u64, seed: u64) -> (DpfKey, DpfKey) {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_keys(domain_bits, alpha, &mut rng).expect("valid parameters")
    }

    #[test]
    fn all_strategies_agree_with_reference() {
        let (k1, _) = keypair(10, 700, 21);
        let reference = eval_full(&k1);
        for strategy in all_strategies(4) {
            assert_eq!(
                strategy.eval_full(&k1),
                reference,
                "strategy {}",
                strategy.name()
            );
        }
    }

    #[test]
    fn strategies_agree_on_tiny_domains() {
        let (k1, _) = keypair(1, 1, 3);
        let reference = eval_full(&k1);
        for strategy in all_strategies(8) {
            assert_eq!(strategy.eval_full(&k1), reference);
        }
    }

    #[test]
    fn subtree_parallel_with_more_threads_than_leaves() {
        let (k1, _) = keypair(2, 3, 3);
        let strategy = EvalStrategy::SubtreeParallel { threads: 64 };
        assert_eq!(strategy.eval_full(&k1), eval_full(&k1));
    }

    #[test]
    fn memory_bounded_with_oversized_chunks() {
        let (k1, _) = keypair(4, 9, 3);
        let strategy = EvalStrategy::MemoryBounded { chunk_bits: 20 };
        assert_eq!(strategy.eval_full(&k1), eval_full(&k1));
    }

    #[test]
    fn eval_range_strategies_match_reference() {
        let (k1, _) = keypair(9, 100, 5);
        let reference = eval_full(&k1);
        for strategy in all_strategies(4) {
            let range = strategy.eval_range(&k1, 37, 300).unwrap();
            for i in 0..300usize {
                assert_eq!(range.get(i), reference.get(37 + i), "{}", strategy.name());
            }
        }
    }

    #[test]
    fn eval_range_with_scratch_matches_eval_range_for_all_strategies() {
        let (k1, _) = keypair(9, 350, 13);
        let prg = LengthDoublingPrg::default();
        let mut scratch = EvalScratch::new();
        for strategy in all_strategies(4) {
            for (start, count) in [(0u64, 512u64), (37, 300), (511, 1), (100, 0)] {
                let threaded = strategy.eval_range(&k1, start, count).unwrap();
                let scratched = strategy
                    .eval_range_with_scratch(&k1, start, count, &prg, &mut scratch)
                    .unwrap();
                assert_eq!(
                    threaded,
                    scratched,
                    "strategy {} start={start} count={count}",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn eval_range_with_scratch_rejects_out_of_domain_for_all_strategies() {
        let (k1, _) = keypair(8, 0, 1);
        let prg = LengthDoublingPrg::default();
        let mut scratch = EvalScratch::new();
        for strategy in all_strategies(2) {
            // (2, u64::MAX - 1) must error out *before* any buffer is
            // reserved for the (absurd) count.
            for (start, count) in [(200u64, 100u64), (256, 1), (u64::MAX, 2), (2, u64::MAX - 1)] {
                assert!(
                    strategy
                        .eval_range_with_scratch(&k1, start, count, &prg, &mut scratch)
                        .is_err(),
                    "strategy {} start={start} count={count}",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn eval_range_rejects_adversarial_ranges_for_all_strategies() {
        // The threaded entry point must also reject wrapping ranges before
        // any per-worker offset arithmetic runs.
        let (k1, _) = keypair(8, 0, 1);
        for strategy in all_strategies(4) {
            for (start, count) in [(u64::MAX, 2u64), (2, u64::MAX - 1), (200, 100), (0, 257)] {
                assert!(
                    strategy.eval_range(&k1, start, count).is_err(),
                    "strategy {} start={start} count={count}",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn subtree_level_is_clamped() {
        assert_eq!(subtree_level(1, 10), 0);
        assert_eq!(subtree_level(2, 10), 1);
        assert_eq!(subtree_level(8, 10), 3);
        // Non-power-of-two thread counts round up to the next power of two.
        assert_eq!(subtree_level(7, 10), 3);
        assert_eq!(subtree_level(1024, 5), 5);
    }

    #[test]
    fn subtree_parallel_internal_helper_matches_reference() {
        let (k1, _) = keypair(8, 100, 2);
        let prg = LengthDoublingPrg::default();
        for threads in [1usize, 2, 3, 8, 16] {
            assert_eq!(
                eval_subtree_parallel(&k1, threads, &prg),
                eval_full(&k1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn branch_parallel_costs_more_prg_calls() {
        let level_by_level = EvalStrategy::LevelByLevel.prg_expansions(16);
        let branch = EvalStrategy::BranchParallel.prg_expansions(16);
        assert!(branch > 10 * level_by_level);
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(EvalStrategy::BranchParallel.name(), "branch-parallel");
        assert_eq!(EvalStrategy::default().name(), "subtree-parallel");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_strategies_agree(
            domain_bits in 1u32..10,
            seed in any::<u64>(),
            threads in 1usize..9,
            chunk_bits in 1u32..8,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let domain = 1u64 << domain_bits;
            let alpha = rng.gen_range(0..domain);
            let (k1, k2) = generate_keys(domain_bits, alpha, &mut rng).unwrap();
            let reference_1 = eval_full(&k1);
            let reference_2 = eval_full(&k2);
            let strategies = [
                EvalStrategy::BranchParallel,
                EvalStrategy::LevelByLevel,
                EvalStrategy::MemoryBounded { chunk_bits },
                EvalStrategy::SubtreeParallel { threads },
            ];
            for strategy in strategies {
                prop_assert_eq!(strategy.eval_full(&k1), reference_1.clone());
                prop_assert_eq!(strategy.eval_full(&k2), reference_2.clone());
            }
        }
    }
}
