//! Distributed point functions (DPFs) for multi-server PIR.
//!
//! A DPF secret-shares a point function `P_{α,β}` (zero everywhere except at
//! `α`, where it equals `β`) into two keys `k1, k2` such that
//! `Eval(k1, x) ⊕ Eval(k2, x) = P_{α,β}(x)` for every `x`, while neither key
//! alone reveals `α` or `β`. In two-server PIR the client's query index is
//! the point `α` and each server expands its key over the whole database
//! domain to obtain its selector bit-vector (§2.3 of the IM-PIR paper).
//!
//! This crate implements:
//!
//! * the [`naive`] XOR-shared one-hot scheme of the paper's Figure 2
//!   (linear-size keys, used as a correctness oracle and teaching example);
//! * the GGM-tree DPF of Gilboa–Ishai / Boyle–Gilboa–Ishai, the construction
//!   the paper adopts from its reference [62] (logarithmic-size keys,
//!   AES-128 as the PRF) — [`DpfKey`], [`gen`], [`eval`];
//! * the four full-domain evaluation strategies discussed in §3.2 and
//!   Figure 7 — branch-parallel, level-by-level, memory-bounded traversal
//!   and the subtree-parallel scheme IM-PIR runs on the host CPU —
//!   in [`parallel`].
//!
//! # Example
//!
//! ```
//! use impir_dpf::{gen::generate_keys, eval::eval_point, point_function::PointFunction};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let domain_bits = 10; // database of 1024 records
//! let alpha = 613;
//! let (k1, k2) = generate_keys(domain_bits, alpha, &mut rng)?;
//! let point = PointFunction::new(alpha, true);
//! for x in [0u64, 1, 612, 613, 614, 1023] {
//!     let shared = eval_point(&k1, x)? ^ eval_point(&k2, x)?;
//!     assert_eq!(shared, point.eval(x));
//! }
//! # Ok::<(), impir_dpf::DpfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
mod error;
pub mod eval;
pub mod gen;
pub mod key;
pub mod naive;
pub mod parallel;
pub mod point_function;

pub use bitvec::SelectorVector;
pub use error::DpfError;
pub use eval::{BufferPool, EvalScratch, ScratchPool};
pub use key::{CorrectionWord, DpfKey, PartyId};
pub use parallel::{host_parallelism, EvalStrategy};

/// Maximum supported domain size in bits.
///
/// 2^40 one-byte records would already be a terabyte-scale database, far
/// beyond both the paper's evaluation (≤ 32 GB) and anything this simulator
/// can hold; the limit mostly guards against accidental `u64` overflow in
/// index arithmetic.
pub const MAX_DOMAIN_BITS: u32 = 40;
