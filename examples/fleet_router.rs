//! A routed fleet, end to end: clients talk to ONE address; the router
//! spreads their sessions over the topology's replicas, fans updates out
//! to the whole fleet, fails over from a killed replica mid-run, and
//! heals the restarted replica by replaying its missed update batches
//! from an ahead peer's journal — all driven by the checked-in
//! `examples/topologies/router_mixed_fleet.fleet` file.
//!
//! Asserted end to end over real sockets:
//!
//! 1. queries through the router are **byte-identical** to queries sent
//!    directly to a replica (a client cannot tell a router from a
//!    replica — same wire protocol, same answers);
//! 2. the full two-server PIR scheme reconstructs records through two
//!    router sessions, exactly as it does against replicas directly;
//! 3. one update through one router session reaches **every** replica
//!    (cpu and pim alike) in the same epoch;
//! 4. killing a replica mid-run is invisible to clients: sessions pinned
//!    to the dead replica fail over to a healthy one and keep answering;
//! 5. the restarted replica starts from the seed database, and the
//!    router's prober catches it up from a peer's update journal — after
//!    which the whole fleet answers **byte-identically to a fault-free
//!    oracle** that saw every update and no faults;
//! 6. per-replica wire-byte accounting shows where the traffic went.
//!
//! Run with `cargo run --example fleet_router --release`.

use std::time::{Duration, Instant};

use im_pir::core::scheme::TwoServerPir;
use im_pir::core::topology::FleetTopology;
use im_pir::core::transport::{LocalTransport, PirTransport, TcpTransport};
use im_pir::core::{PirClient, PirError};
use impir_server::build_service;
use impir_server::router::PirRouter;

/// The checked-in fleet file, compiled in so the example runs from any
/// working directory.
const FLEET_FILE: &str = include_str!("topologies/router_mixed_fleet.fleet");

/// How long to wait for the router's prober to catch a replica up.
const CATCH_UP_DEADLINE: Duration = Duration::from_secs(10);

fn wait_for_epoch(addr: &str, want: u64) -> Result<(), PirError> {
    let deadline = Instant::now() + CATCH_UP_DEADLINE;
    loop {
        if let Ok(mut probe) = TcpTransport::connect(addr) {
            if let Ok(info) = probe.epoch_info() {
                if info.current_epoch >= want {
                    return Ok(());
                }
            }
        }
        if Instant::now() > deadline {
            return Err(PirError::Protocol {
                reason: format!("replica {addr} never reached epoch {want}"),
            });
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = FleetTopology::parse(FLEET_FILE)?;
    let db = topology.build_database()?;
    let replica_addrs: Vec<String> = topology
        .replicas
        .iter()
        .map(|r| r.listen.clone().expect("router fleets are all-TCP"))
        .collect();
    println!(
        "fleet: {} records x {} B (seed {}), {} replicas + router, from \
         examples/topologies/router_mixed_fleet.fleet",
        topology.records,
        topology.record_bytes,
        topology.seed,
        topology.replicas.len()
    );

    // The whole fleet in threads: three replicas (two cpu, one pim) and
    // the front-tier router, every one built from the same topology.
    let services: Vec<_> = (0..topology.replicas.len())
        .map(|i| build_service(&topology, i))
        .collect::<Result<_, _>>()?;
    let router = PirRouter::bind(&topology)?;
    println!("router listening on {}", router.addr());

    // --- 1. The router is indistinguishable from a replica ----------------
    let mut probe_client = PirClient::new(topology.records, topology.record_bytes, 99)?;
    let indices = [0u64, 1000, 4095, 77, 1000];
    let (shares, _) = probe_client.generate_batch(&indices)?;
    let mut via_router = TcpTransport::connect(router.addr())?;
    let mut via_replica = TcpTransport::connect(replica_addrs[0].as_str())?;
    let routed = via_router.query_batch(&shares)?;
    let direct = via_replica.query_batch(&shares)?;
    assert_eq!(
        routed.responses, direct.responses,
        "router and direct-replica responses must be byte-identical"
    );
    println!(
        "byte-identity: {} responses identical via router and via replica",
        routed.responses.len()
    );

    // --- 2. Full PIR through the router -----------------------------------
    // Two sessions to ONE address; round-robin assignment lands them on
    // different replicas, and identical databases make the two DPF shares
    // reconstruct exactly as in a direct deployment.
    let mut pir = TwoServerPir::from_transports(
        PirClient::new(topology.records, topology.record_bytes, 1)?,
        Box::new(TcpTransport::connect(router.addr())?),
        Box::new(TcpTransport::connect(router.addr())?),
    )?;
    for &index in &[0u64, 2048, 4095] {
        assert_eq!(pir.query(index)?, db.record(index), "routed record {index}");
    }
    println!("two-server PIR reconstructs records through two router sessions");

    // --- 3. One update, the whole fleet ------------------------------------
    // Updates are NOT per-session: the router fans one batch out to every
    // healthy replica under its update lock, so the fleet moves epochs
    // together. (A TwoServerPir would send the batch once per session —
    // through a router that means a double fan-out, so updates go through
    // one dedicated session instead.)
    let record_bytes = topology.record_bytes;
    let first_update: Vec<(u64, Vec<u8>)> = vec![
        (10, vec![0xA1; record_bytes]),
        (4095, vec![0xB2; record_bytes]),
    ];
    let ack = via_router.apply_updates(&first_update)?;
    assert_eq!(ack.epoch, 1, "fan-out reaches epoch 1");
    for addr in &replica_addrs {
        wait_for_epoch(addr, 1)?;
    }
    assert_eq!(pir.query(10)?, vec![0xA1; record_bytes], "updated bytes");
    println!(
        "update fan-out: one batch through one router session put all {} replicas at epoch 1",
        replica_addrs.len()
    );

    // --- 4. Kill a replica mid-run: sessions fail over ---------------------
    // `via_router` and the two PIR sessions are pinned round-robin across
    // the replicas, so some of them are about to lose their backend.
    let mut services = services;
    let killed = services.remove(1);
    let killed_addr = replica_addrs[1].clone();
    killed.shutdown();
    println!(
        "replica `{}` killed ({killed_addr})",
        topology.replicas[1].name
    );
    for &index in &[10u64, 500, 4095] {
        let expected: &[u8] = first_update
            .iter()
            .find(|(i, _)| *i == index)
            .map_or_else(|| db.record(index), |(_, bytes)| bytes);
        assert_eq!(
            pir.query(index)?,
            expected,
            "query {index} with a dead replica"
        );
    }
    let routed_again = via_router.query_batch(&shares)?;
    let direct_again = via_replica.query_batch(&shares)?;
    assert_eq!(
        routed_again.responses, direct_again.responses,
        "failover responses stay byte-identical to a surviving replica"
    );
    println!("failover: every session keeps answering, byte-identical responses");

    // An update while one replica is down lands on the healthy ones; the
    // dead replica will be two batches behind when it returns.
    let second_update: Vec<(u64, Vec<u8>)> = vec![(77, vec![0xC3; record_bytes])];
    let ack = via_router.apply_updates(&second_update)?;
    assert_eq!(ack.epoch, 2, "healthy replicas reach epoch 2");
    println!("update with a dead replica: healthy replicas move to epoch 2");

    // --- 5. Restart from seed; the router heals it -------------------------
    // The restarted replica holds the SEED database (epoch 0) on the same
    // fixed port. The router's prober notices it is lagging past
    // max-lag-epochs and replays its two missed batches from an ahead
    // peer's journal — client-invisible, operator-free recovery.
    let restarted = build_service(&topology, 1)?;
    println!(
        "replica `{}` restarted from seed on {}",
        topology.replicas[1].name,
        restarted.addr()
    );
    wait_for_epoch(&killed_addr, 2)?;
    println!("prober caught the restarted replica up to epoch 2 via journal replay");

    // --- 6. The healed fleet matches a fault-free oracle -------------------
    // The oracle: an in-process engine from the same topology that saw
    // both updates and no faults. Every replica, queried directly, must
    // answer byte-identically — and so must the router.
    let mut oracle = LocalTransport::new(topology.build_engine(0)?);
    oracle.apply_updates(&first_update)?;
    oracle.apply_updates(&second_update)?;
    let (oracle_shares, _) = probe_client.generate_batch(&indices)?;
    let expected = oracle.query_batch(&oracle_shares)?;
    for addr in &replica_addrs {
        let mut direct = TcpTransport::connect(addr.as_str())?;
        let got = direct.query_batch(&oracle_shares)?;
        assert_eq!(
            got.responses, expected.responses,
            "replica {addr} must match the fault-free oracle"
        );
        assert_eq!(got.epoch, 2, "replica {addr} epoch");
    }
    let routed = via_router.query_batch(&oracle_shares)?;
    assert_eq!(routed.responses, expected.responses);
    println!(
        "oracle check: all {} replicas and the router answer byte-identically \
         to a fault-free engine at epoch 2",
        replica_addrs.len()
    );

    // --- 7. Where did the bytes go? ----------------------------------------
    for traffic in router.replica_traffic() {
        println!(
            "  replica `{}`: healthy={}, {} B up, {} B down",
            traffic.name, traffic.healthy, traffic.uploaded_bytes, traffic.downloaded_bytes
        );
    }

    drop(pir);
    drop(via_router);
    drop(via_replica);
    router.shutdown();
    for service in services {
        service.shutdown();
    }
    restarted.shutdown();
    println!("routed fleet shut down cleanly — fleet router OK");
    Ok(())
}
