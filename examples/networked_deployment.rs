//! A real-socket two-server PIR deployment: the paper's actual service
//! shape, with a network between the client and each server.
//!
//! The fleet is declared once as a [`FleetTopology`] — two TCP replicas
//! with *different* shard layouts — and every server here is built from
//! it with [`build_service`] (each one is exactly what
//! `impir-server --config` runs — same library, same construction path,
//! same wire protocol; here they live in threads so the example is
//! self-contained and CI-friendly). The client side drives them through
//! [`TcpTransport`]s, and because [`TwoServerPir`] only sees
//! `Box<dyn PirTransport>`, the *same* scheme code also runs a mixed
//! deployment (one remote server, one in-process engine) without change —
//! "where the server runs" is one line of topology, not a type.
//!
//! The example asserts, end to end over real sockets:
//!
//! 1. remote queries reconstruct the correct records, and the server
//!    responses are **byte-identical** to an in-process engine built from
//!    the same topology replica;
//! 2. bulk updates through the wire move both replicas to the new epoch
//!    together, and post-update queries return the new bytes;
//! 3. concurrent client sessions (threads hammering one server) all get
//!    correct answers — the service coalesces their batches into shared
//!    engine waves;
//! 4. per-batch upload/download wire bytes are reported;
//! 5. killing one replica fails updates loudly *without* committing
//!    anything on the surviving side (all-or-nothing), and a **fresh
//!    replica** brought up from the seed database catches up
//!    automatically: the next query replays its missed epochs from the
//!    healthy server's update journal and answers from the converged
//!    database version — after which the failed update re-applies
//!    cleanly, exactly once per replica.
//!
//! Run with `cargo run --example networked_deployment --release`.
//!
//! For a true multi-process deployment, put fixed ports in a topology
//! file and start each role by name (see `examples/topologies/`):
//!
//! ```text
//! impir-server --config examples/topologies/two_replica_tcp.fleet --replica alpha &
//! impir-server --config examples/topologies/two_replica_tcp.fleet --replica beta &
//! ```

use im_pir::core::scheme::TwoServerPir;
use im_pir::core::topology::{FleetTopology, ReplicaSpec, ShardPolicy};
use im_pir::core::transport::{LocalTransport, PirTransport, TcpTransport};
use im_pir::core::{PirClient, PirError};
use impir_server::build_service;

const RECORDS: u64 = 2048;
const RECORD_BYTES: usize = 32;
const DB_SEED: u64 = 7;

/// The deployment, as data: two TCP replicas over one synthetic database,
/// with deliberately different shard layouts — distribution policy is
/// replica-local and invisible on the wire. Ephemeral ports (`:0`)
/// because the example connects to whatever the services bind.
fn fleet_topology() -> FleetTopology {
    let mut topology = FleetTopology::new(RECORDS, RECORD_BYTES, DB_SEED);
    let mut alpha = ReplicaSpec::tcp("alpha", "127.0.0.1:0");
    alpha.sharding = Some(ShardPolicy::Uniform(2));
    let mut beta = ReplicaSpec::tcp("beta", "127.0.0.1:0");
    beta.sharding = Some(ShardPolicy::Uniform(3));
    topology.replicas.push(alpha);
    topology.replicas.push(beta);
    topology
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = fleet_topology();
    let db = topology.build_database()?;
    println!(
        "database: {RECORDS} records x {RECORD_BYTES} B (seed {DB_SEED}), served over loopback TCP"
    );

    // Two server processes-in-threads, both built from the topology —
    // the same path `impir-server --config fleet.txt --replica NAME` takes.
    let service_1 = build_service(&topology, 0)?;
    let service_2 = build_service(&topology, 1)?;
    println!("replica alpha listening on {} (2 shards)", service_1.addr());
    println!("replica beta  listening on {} (3 shards)", service_2.addr());

    // --- 1. Fully remote deployment --------------------------------------
    let transport_1 = TcpTransport::connect(service_1.addr())?;
    let transport_2 = TcpTransport::connect(service_2.addr())?;
    let client = PirClient::new(RECORDS, RECORD_BYTES, 1)?;
    let mut remote =
        TwoServerPir::from_transports(client, Box::new(transport_1), Box::new(transport_2))?;

    let indices = [0u64, 1234, 2047, 555, 1234];
    let (records, outcome_1, outcome_2) = remote.query_batch(&indices)?;
    for (record, &index) in records.iter().zip(&indices) {
        assert_eq!(record, db.record(index), "remote record {index}");
    }
    println!(
        "remote batch of {}: {:.2} ms end to end, {} B up / {} B down per server pair \
         (epochs {}/{})",
        indices.len(),
        1e3 * outcome_1.wall_seconds.max(outcome_2.wall_seconds),
        outcome_1.upload_bytes + outcome_2.upload_bytes,
        outcome_1.download_bytes + outcome_2.download_bytes,
        outcome_1.epoch,
        outcome_2.epoch,
    );

    // Byte-identical to the in-process path: same shares, same topology
    // replica -> the client cannot tell a socket from a call.
    let mut probe = PirClient::new(RECORDS, RECORD_BYTES, 99)?;
    let (shares, _) = probe.generate_batch(&indices)?;
    let mut wire_session = TcpTransport::connect(service_1.addr())?;
    let mut local_session = LocalTransport::new(topology.build_engine(0)?);
    let over_wire = wire_session.query_batch(&shares)?;
    let in_process = local_session.query_batch(&shares)?;
    assert_eq!(
        over_wire.responses, in_process.responses,
        "socket and in-process responses must be byte-identical"
    );
    println!(
        "byte-identity: {} responses identical across TcpTransport and LocalTransport",
        over_wire.responses.len()
    );

    // --- 2. Bulk updates over the wire -----------------------------------
    let updates: Vec<(u64, Vec<u8>)> = vec![
        (10, vec![0xA1; RECORD_BYTES]),
        (1234, vec![0xB2; RECORD_BYTES]),
        (2047, vec![0xC3; RECORD_BYTES]),
    ];
    let (ack_1, ack_2) = remote.apply_updates(&updates)?;
    assert_eq!(ack_1.epoch, 1);
    assert_eq!(ack_2.epoch, 1);
    for (index, bytes) in &updates {
        assert_eq!(remote.query(*index)?, *bytes, "post-update record {index}");
    }
    assert_eq!(remote.query(0)?, db.record(0), "untouched record");
    println!(
        "updates: {} records pushed over the wire, both replicas now at epoch {}",
        updates.len(),
        ack_1.epoch
    );

    // All-or-nothing still holds across the network: one bad entry, no
    // visible change on either replica.
    let poisoned = vec![
        (0u64, vec![0xFF; RECORD_BYTES]),
        (RECORDS, vec![0xFF; RECORD_BYTES]),
    ];
    assert!(remote.apply_updates(&poisoned).is_err());
    assert_eq!(
        remote.query(0)?,
        db.record(0),
        "rejected batch changed nothing"
    );
    println!("updates: poisoned batch rejected atomically on both replicas");

    // --- 3. Mixed deployment: one remote server, one in-process ----------
    // One line of topology change: replica `beta` becomes an in-process
    // engine (4 shards). The fresh engine starts at epoch 0, one batch
    // behind the remote server — the first query detects the lag and
    // replays it from the remote journal before answering.
    let mut mixed_topology = topology.clone();
    let mut gamma = ReplicaSpec::local("gamma");
    gamma.sharding = Some(ShardPolicy::Uniform(4));
    mixed_topology.replicas[1] = gamma;
    let mixed_client = PirClient::new(RECORDS, RECORD_BYTES, 2)?;
    let mut mixed = TwoServerPir::from_transports(
        mixed_client,
        Box::new(TcpTransport::connect(service_1.addr())?),
        mixed_topology.connect(1)?,
    )?;
    for &index in &[10u64, 777, 2047] {
        let expected: &[u8] = updates
            .iter()
            .find(|(i, _)| *i == index)
            .map_or_else(|| db.record(index), |(_, bytes)| bytes);
        assert_eq!(
            mixed.query(index)?,
            expected,
            "mixed deployment record {index}"
        );
    }
    println!("mixed deployment (TCP + in-process): same client code, same answers");

    // --- 4. Concurrent sessions against one server ------------------------
    let addr = service_1.addr();
    let mut workers = Vec::new();
    for session in 0..4u64 {
        let db = std::sync::Arc::clone(&db);
        workers.push(std::thread::spawn(move || -> Result<usize, PirError> {
            let mut transport = TcpTransport::connect(addr)?;
            let mut client = PirClient::new(RECORDS, RECORD_BYTES, 100 + session)?;
            let indices: Vec<u64> = (0..8).map(|i| (i * 257 + session * 41) % RECORDS).collect();
            let (shares, _) = client.generate_batch(&indices)?;
            let batch = transport.query_batch(&shares)?;
            // Single-server subresults are not records; correctness shows
            // through the response ids, count and epoch (the data path is
            // pinned byte-identical above and reconstructed in section 1).
            assert_eq!(batch.responses.len(), indices.len());
            assert_eq!(batch.epoch, 1, "server 0 applied exactly one update batch");
            for (share, response) in shares.iter().zip(&batch.responses) {
                assert_eq!(response.query_id, share.query_id);
                assert_eq!(response.payload.len(), db.record_size());
            }
            Ok(batch.responses.len())
        }));
    }
    let mut answered = 0;
    for worker in workers {
        answered += worker.join().expect("worker panicked")?;
    }
    println!("concurrent sessions: {answered} queries answered across 4 parallel clients");

    // --- 5. Replica failure and epoch-driven recovery ---------------------
    // Kill replica beta and push an update while it is down. The deployment
    // converges the replicas *before* letting a batch land — a batch must
    // never sit on only one replica's history — so with a dead replica
    // the update commits NOWHERE and fails loudly: alpha is untouched,
    // still at epoch 1 with no half-committed batch to reconcile.
    service_2.shutdown();
    let lost_update: Vec<(u64, Vec<u8>)> = vec![(77, vec![0xD4; RECORD_BYTES])];
    let err = remote
        .apply_updates(&lost_update)
        .expect_err("replica beta is down; the update must not land anywhere");
    println!("update with a dead replica fails loudly:\n    {err}");

    // The fresh replica holds the seed database at epoch 0 — one committed
    // batch behind alpha (the bulk update of section 2). Same topology,
    // same build path as the original.
    let service_2 = build_service(&topology, 1)?;
    println!(
        "replica beta restarted on {} from the seed database (epoch 0)",
        service_2.addr()
    );
    let mut recovered = TwoServerPir::from_transports(
        PirClient::new(RECORDS, RECORD_BYTES, 3)?,
        Box::new(TcpTransport::connect(service_1.addr())?),
        Box::new(TcpTransport::connect(service_2.addr())?),
    )?;
    // The first query detects the epoch divergence, replays the missed
    // batch over the wire and answers from the converged version — no
    // operator intervention.
    assert_eq!(
        recovered.query(10)?,
        vec![0xA1; RECORD_BYTES],
        "bulk update survived"
    );
    assert_eq!(recovered.query(0)?, db.record(0), "untouched record");
    let epoch_0 = recovered.server_info(0)?.epoch;
    let epoch_1 = recovered.server_info(1)?.epoch;
    assert_eq!((epoch_0, epoch_1), (1, 1));
    println!(
        "recovery: fresh replica replayed its lag from its peer's journal; \
         both replicas at epoch {epoch_0}, queries answer the updated bytes"
    );
    // With both replicas healthy again the once-failed update simply goes
    // through — exactly once on each side.
    let (ack_1, ack_2) = recovered.apply_updates(&lost_update)?;
    assert_eq!((ack_1.epoch, ack_2.epoch), (2, 2));
    assert_eq!(recovered.query(77)?, vec![0xD4; RECORD_BYTES]);
    println!(
        "the failed update re-applies cleanly after recovery (epoch {})",
        ack_1.epoch
    );

    // --- 6. Graceful shutdown --------------------------------------------
    drop(remote);
    drop(mixed);
    drop(recovered);
    drop(wire_session);
    service_1.shutdown();
    service_2.shutdown();
    println!("both servers shut down cleanly — networked deployment OK");
    Ok(())
}
