//! Compromised-credential checking scenario with batched queries
//! (paper §1, §3.4, §5.2).
//!
//! An enterprise password manager checks a batch of credential hashes
//! against a breach corpus (Have I Been Pwned-style) without revealing
//! which hashes it is checking. The batch is processed with IM-PIR's
//! Figure-8 pipeline over multiple DPU clusters.
//!
//! Run with `cargo run --example credential_check --release`.

use std::sync::Arc;

use im_pir::core::scheme::TwoServerPir;
use im_pir::core::server::pim::ImPirConfig;
use im_pir::core::PirError;
use im_pir::workload::Scenario;

fn main() -> Result<(), PirError> {
    let scenario = Scenario::compromised_credentials();
    println!(
        "scenario: {} — each record is a {}",
        scenario.name, scenario.record_description
    );

    // A scaled-down breach corpus.
    let corpus = Arc::new(scenario.database_spec_with_bytes(1 << 20, 99).build()?);
    println!(
        "breach corpus: {} credential hashes ({} KiB)",
        corpus.num_records(),
        corpus.size_bytes() / 1024
    );

    // Four DPU clusters so queries of the batch proceed in parallel (§3.4).
    let config = ImPirConfig::tiny_test(8).with_clusters(4);
    let mut pir = TwoServerPir::with_pim_servers(Arc::clone(&corpus), config)?;

    // The password manager checks 16 credentials at once.
    let to_check = scenario.sample_queries(16, corpus.num_records(), 7);
    let (records, outcome_1, outcome_2) = pir.query_batch(&to_check)?;
    for (index, record) in to_check.iter().zip(&records) {
        assert_eq!(record, corpus.record(*index));
    }
    println!(
        "checked {} credentials privately; server 1 spent {:.1} ms (hybrid), server 2 {:.1} ms",
        records.len(),
        outcome_1.hybrid_seconds() * 1e3,
        outcome_2.hybrid_seconds() * 1e3,
    );
    let shares = outcome_1.phase_totals.percentages();
    let names = im_pir::core::PhaseBreakdown::phase_names();
    println!("server 1 batch phase shares:");
    for (name, share) in names.iter().zip(shares) {
        println!("  {name:>14}: {share:5.1} %");
    }
    Ok(())
}
