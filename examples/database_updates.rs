//! Bulk database updates on a live IM-PIR deployment (paper §3.3).
//!
//! "For frequently updated databases, DPUs can handle queries on a stable
//! version of the database, while the CPU uses brief windows when DPUs are
//! idle to apply bulk database updates." This example serves queries,
//! applies a batch of record updates in place in DPU MRAM, and shows that
//! subsequent queries observe the new values on every cluster.
//!
//! Run with `cargo run --example database_updates --release`.

use std::sync::Arc;

use im_pir::core::client::PirClient;
use im_pir::core::database::Database;
use im_pir::core::server::pim::{ImPirConfig, ImPirServer};
use im_pir::core::server::PirServer;
use im_pir::core::PirError;

fn main() -> Result<(), PirError> {
    let initial = Arc::new(Database::random(2048, 32, 77)?);
    let mut current = (*initial).clone(); // the operator's up-to-date copy

    let config = ImPirConfig::tiny_test(8).with_clusters(2);
    let mut server_1 = ImPirServer::new(Arc::clone(&initial), config.clone())?;
    let mut server_2 = ImPirServer::new(Arc::clone(&initial), config)?;
    let mut client = PirClient::new(initial.num_records(), initial.record_size(), 1)?;

    let watched_index = 1500u64;
    let before = query(&mut client, &mut server_1, &mut server_2, watched_index)?;
    assert_eq!(before, initial.record(watched_index));
    println!(
        "before update: record {watched_index} starts with {:02x}{:02x}",
        before[0], before[1]
    );

    // A bulk update arrives: 64 revoked entries get fresh contents.
    let updates: Vec<(u64, Vec<u8>)> = (0..64u64)
        .map(|i| {
            let index = (i * 31) % initial.num_records();
            (index, vec![0xE0 | (i as u8 & 0x0f); 32])
        })
        .collect();
    for (index, bytes) in &updates {
        current.set_record(*index, bytes)?;
    }
    let outcome_1 = server_1.apply_updates(&updates)?;
    let outcome_2 = server_2.apply_updates(&updates)?;
    println!(
        "applied {} record updates: {} bytes pushed per server, ≈{:.2} ms of simulated CPU→DPU transfer",
        outcome_1.records_updated,
        outcome_1.bytes_pushed,
        (outcome_1.simulated_seconds + outcome_2.simulated_seconds) / 2.0 * 1e3
    );

    // Every updated record (and the untouched ones) is served correctly.
    for (index, _) in updates.iter().take(5) {
        let record = query(&mut client, &mut server_1, &mut server_2, *index)?;
        assert_eq!(record, current.record(*index));
    }
    let untouched = query(&mut client, &mut server_1, &mut server_2, watched_index)?;
    assert_eq!(untouched, current.record(watched_index));
    println!("queries after the update return the new contents on both servers");
    Ok(())
}

fn query(
    client: &mut PirClient,
    server_1: &mut ImPirServer,
    server_2: &mut ImPirServer,
    index: u64,
) -> Result<Vec<u8>, PirError> {
    let (q1, q2) = client.generate_query(index)?;
    let (r1, _) = server_1.process_query(&q1)?;
    let (r2, _) = server_2.process_query(&q2)?;
    client.reconstruct(&r1, &r2)
}
