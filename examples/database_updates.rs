//! Bulk database updates on a live, sharded IM-PIR deployment (§3.3).
//!
//! "For frequently updated databases, DPUs can handle queries on a stable
//! version of the database, while the CPU uses brief windows when DPUs are
//! idle to apply bulk database updates." Since updates were lifted into the
//! engine, callers say *what* changed — global record indices — and
//! `QueryEngine::apply_updates` decides *where* it lands: it validates the
//! whole batch (all-or-nothing), translates global indices into each
//! shard's local index space, and fans the per-shard update sets out to the
//! backends in parallel.
//!
//! This example serves queries through a **mixed** three-shard deployment —
//! a PIM shard, a streaming (out-of-core) shard and a CPU shard behind one
//! engine per server — applies one bulk update through both engines, and
//! shows that
//!
//! 1. subsequent queries observe the new values on every shard, whatever
//!    backend serves it;
//! 2. a batch containing one invalid entry is rejected before any shard
//!    changes.
//!
//! Run with `cargo run --example database_updates --release`.

use std::sync::Arc;

use im_pir::core::database::Database;
use im_pir::core::engine::{EngineConfig, QueryEngine};
use im_pir::core::server::cpu::{CpuPirServer, CpuServerConfig};
use im_pir::core::server::pim::{ImPirConfig, ImPirServer};
use im_pir::core::server::streaming::{StreamingConfig, StreamingImPirServer};
use im_pir::core::shard::{ShardPlan, ShardedDatabase};
use im_pir::core::{
    BatchExecutor, PirClient, PirError, PirServer, UpdatableBackend, UpdateOutcome,
};

/// One engine drives three different backend kinds, so the example wraps
/// them in an enum (the PIM variants are boxed — each carries a simulated
/// DPU system).
#[derive(Debug)]
enum AnyBackend {
    Pim(Box<ImPirServer>),
    Streaming(Box<StreamingImPirServer>),
    Cpu(CpuPirServer),
}

impl PirServer for AnyBackend {
    fn num_records(&self) -> u64 {
        match self {
            AnyBackend::Pim(s) => s.num_records(),
            AnyBackend::Streaming(s) => s.num_records(),
            AnyBackend::Cpu(s) => s.num_records(),
        }
    }

    fn record_size(&self) -> usize {
        match self {
            AnyBackend::Pim(s) => s.record_size(),
            AnyBackend::Streaming(s) => s.record_size(),
            AnyBackend::Cpu(s) => s.record_size(),
        }
    }

    fn process_query(
        &mut self,
        share: &im_pir::core::QueryShare,
    ) -> Result<(im_pir::core::ServerResponse, im_pir::core::PhaseBreakdown), PirError> {
        match self {
            AnyBackend::Pim(s) => s.process_query(share),
            AnyBackend::Streaming(s) => s.process_query(share),
            AnyBackend::Cpu(s) => s.process_query(share),
        }
    }
}

impl BatchExecutor for AnyBackend {
    fn evaluate_selector(
        &self,
        share: &im_pir::core::QueryShare,
    ) -> Result<im_pir::dpf::SelectorVector, PirError> {
        match self {
            AnyBackend::Pim(s) => s.evaluate_selector(share),
            AnyBackend::Streaming(s) => s.evaluate_selector(share),
            AnyBackend::Cpu(s) => s.evaluate_selector(share),
        }
    }

    fn selector_evaluator(&self) -> im_pir::core::batch::SelectorEvaluator {
        match self {
            AnyBackend::Pim(s) => s.selector_evaluator(),
            AnyBackend::Streaming(s) => s.selector_evaluator(),
            AnyBackend::Cpu(s) => s.selector_evaluator(),
        }
    }

    fn wave_width(&self) -> usize {
        match self {
            AnyBackend::Pim(s) => s.wave_width(),
            AnyBackend::Streaming(s) => s.wave_width(),
            AnyBackend::Cpu(s) => s.wave_width(),
        }
    }

    fn execute_wave(
        &mut self,
        selectors: &[&im_pir::dpf::SelectorVector],
    ) -> Result<(Vec<Vec<u8>>, im_pir::core::PhaseBreakdown), PirError> {
        match self {
            AnyBackend::Pim(s) => s.execute_wave(selectors),
            AnyBackend::Streaming(s) => s.execute_wave(selectors),
            AnyBackend::Cpu(s) => s.execute_wave(selectors),
        }
    }
}

impl UpdatableBackend for AnyBackend {
    fn apply_updates(&mut self, updates: &[(u64, Vec<u8>)]) -> Result<UpdateOutcome, PirError> {
        match self {
            AnyBackend::Pim(s) => s.apply_updates(updates),
            AnyBackend::Streaming(s) => UpdatableBackend::apply_updates(s.as_mut(), updates),
            AnyBackend::Cpu(s) => UpdatableBackend::apply_updates(s, updates),
        }
    }

    fn database(&self) -> &std::sync::Arc<im_pir::core::Database> {
        match self {
            AnyBackend::Pim(s) => s.database(),
            AnyBackend::Streaming(s) => s.database(),
            AnyBackend::Cpu(s) => s.database(),
        }
    }
}

/// A mixed three-shard engine: records [0, 1024) on preloaded PIM,
/// [1024, 1536) on the streaming (out-of-core) PIM mode, the tail on CPU.
fn mixed_engine(database: &ShardedDatabase) -> Result<QueryEngine<AnyBackend>, PirError> {
    QueryEngine::sharded(database, EngineConfig::default(), |shard_db, shard| {
        Ok(match shard {
            0 => AnyBackend::Pim(Box::new(ImPirServer::new(
                shard_db,
                ImPirConfig::tiny_test(4).with_clusters(2),
            )?)),
            1 => AnyBackend::Streaming(Box::new(StreamingImPirServer::new(
                shard_db,
                StreamingConfig::new(ImPirConfig::tiny_test(4), 2048)?,
            )?)),
            _ => AnyBackend::Cpu(CpuPirServer::new(shard_db, CpuServerConfig::baseline())?),
        })
    })
}

fn main() -> Result<(), PirError> {
    let records: u64 = 2048;
    let initial = Arc::new(Database::random(records, 32, 77)?);
    let mut current = (*initial).clone(); // the operator's up-to-date copy

    let plan = ShardPlan::from_ranges(vec![0..1024, 1024..1536, 1536..records])?;
    let sharded = ShardedDatabase::new(Arc::clone(&initial), plan)?;
    let mut engine_1 = mixed_engine(&sharded)?;
    let mut engine_2 = mixed_engine(&sharded)?;
    let mut client = PirClient::new(records, initial.record_size(), 1)?;
    println!(
        "deployment: {records} records x 32 B over 3 shards \
         (PIM [0,1024) | streaming [1024,1536) | CPU [1536,2048))"
    );

    // One watched record per shard, plus one that a bulk update will touch.
    let watched = [100u64, 1200, 2000];
    for &index in &watched {
        let record = query(&mut client, &mut engine_1, &mut engine_2, index)?;
        assert_eq!(record, current.record(index));
    }
    println!("before update: all shards serve the initial contents");

    // A bulk update arrives: 64 revoked entries spread over all three
    // shards get fresh contents (runs of adjacent records coalesce into
    // single MRAM transfers on the PIM shard).
    let updates: Vec<(u64, Vec<u8>)> = (0..64u64)
        .map(|i| {
            let index = (i * 37) % records;
            (index, vec![0xE0 | (i as u8 & 0x0f); 32])
        })
        .collect();
    for (index, bytes) in &updates {
        current.set_record(*index, bytes)?;
    }
    let outcome_1 = engine_1.apply_updates(&updates)?;
    let outcome_2 = engine_2.apply_updates(&updates)?;
    assert_eq!(outcome_1.epoch, 1);
    println!(
        "applied {} record updates through each engine: {} bytes pushed to MRAM, \
         ≈{:.3} ms simulated CPU→DPU transfer (critical path over shards), epoch {} → {}",
        outcome_1.records_updated,
        outcome_1.bytes_pushed,
        (outcome_1.simulated_seconds + outcome_2.simulated_seconds) / 2.0 * 1e3,
        0,
        engine_1.database_epoch(),
    );

    // Every updated record is served correctly from whichever shard holds
    // it, and untouched records are unaffected.
    for (index, _) in updates.iter().step_by(13) {
        let record = query(&mut client, &mut engine_1, &mut engine_2, *index)?;
        assert_eq!(record, current.record(*index));
    }
    for &index in &watched {
        let record = query(&mut client, &mut engine_1, &mut engine_2, index)?;
        assert_eq!(record, current.record(index));
    }
    println!("queries after the update return the new contents on every shard");

    // All-or-nothing: one out-of-range entry poisons the whole batch; no
    // shard observes the (valid) first entry.
    let poisoned = vec![(0u64, vec![0u8; 32]), (records, vec![0u8; 32])];
    let rejected = engine_1.apply_updates(&poisoned);
    assert!(matches!(rejected, Err(PirError::IndexOutOfRange { .. })));
    assert_eq!(engine_1.database_epoch(), 1);
    let record = query(&mut client, &mut engine_1, &mut engine_2, 0)?;
    assert_eq!(record, current.record(0));
    println!("a batch with one invalid entry is rejected atomically ✓");
    Ok(())
}

fn query(
    client: &mut PirClient,
    engine_1: &mut QueryEngine<AnyBackend>,
    engine_2: &mut QueryEngine<AnyBackend>,
    index: u64,
) -> Result<Vec<u8>, PirError> {
    let (q1, q2) = client.generate_query(index)?;
    let (r1, _) = engine_1.execute_query(&q1)?;
    let (r2, _) = engine_2.execute_query(&q2)?;
    client.reconstruct(&r1, &r2)
}
