//! Compare the three systems of the paper's evaluation — CPU-PIR, the
//! GPU-PIR comparator and IM-PIR — on the same workload, and print both the
//! measured (this machine) and modelled (paper hardware) numbers.
//!
//! Run with `cargo run --example cpu_vs_pim --release`.

use std::sync::Arc;

use im_pir::baselines::{CpuPirBaseline, GpuPirBaseline, ImPirSystem, SystemUnderTest};
use im_pir::core::database::Database;
use im_pir::core::server::pim::ImPirConfig;
use im_pir::core::{PirClient, PirError};
use im_pir::perf::model::PirWorkload;
use im_pir::pim::PimConfig;

const RECORD_BYTES: usize = 32;
const BATCH: usize = 8;

fn main() -> Result<(), PirError> {
    // Functional comparison on a scaled-down database.
    let records = (1u64 << 20) / RECORD_BYTES as u64; // 1 MiB
    let db = Arc::new(Database::random(records, RECORD_BYTES, 3)?);
    let mut client = PirClient::new(records, RECORD_BYTES, 0)?;
    let indices: Vec<u64> = (0..BATCH as u64).map(|i| (i * 131) % records).collect();
    let (shares_1, shares_2) = client.generate_batch(&indices)?;

    let mut cpu = CpuPirBaseline::new(db.clone())?;
    let mut gpu = GpuPirBaseline::new(db.clone())?;
    let pim_config = ImPirConfig {
        pim: PimConfig::tiny_test(16, 16 << 20),
        clusters: 1,
        eval_threads: 1,
    };
    let mut pim = ImPirSystem::new(db.clone(), pim_config)?;

    println!(
        "functional run: {} records, batch of {BATCH} queries",
        records
    );
    let cpu_outcome = cpu.process_batch(&shares_1)?;
    let gpu_outcome = gpu.process_batch(&shares_1)?;
    let pim_outcome = pim.process_batch(&shares_1)?;

    // Cross-check: all three systems produce the same subresults.
    for ((a, b), c) in cpu_outcome
        .responses
        .iter()
        .zip(&gpu_outcome.responses)
        .zip(&pim_outcome.responses)
    {
        assert_eq!(a.payload, b.payload);
        assert_eq!(a.payload, c.payload);
    }
    // And reconstructing against a second (CPU) server returns the records.
    let mut second_server = CpuPirBaseline::new(db.clone())?;
    let second = second_server.process_batch(&shares_2)?;
    for (i, index) in indices.iter().enumerate() {
        let record = client.reconstruct(&pim_outcome.responses[i], &second.responses[i])?;
        assert_eq!(record, db.record(*index));
    }
    println!("all three backends agree and reconstruction matches the database\n");

    println!("measured on this machine (hybrid seconds for the batch):");
    println!("  CPU-PIR: {:.3} s", cpu_outcome.hybrid_seconds());
    println!(
        "  GPU-PIR: {:.3} s (GPU phases from the RTX 4090 model)",
        gpu_outcome.hybrid_seconds()
    );
    println!(
        "  IM-PIR : {:.3} s (PIM phases from the UPMEM model)",
        pim_outcome.hybrid_seconds()
    );

    // Paper-scale prediction for a 1 GB database and batch of 32.
    let workload = PirWorkload::new(1 << 30, RECORD_BYTES as u64, 32);
    let cpu_model = cpu.model_batch(&workload);
    let gpu_model = gpu.model_batch(&workload);
    let pim_model = pim.model_batch(&workload);
    println!("\nmodelled at paper scale (1 GB database, batch = 32):");
    println!(
        "  CPU-PIR: {:6.1} QPS   GPU-PIR: {:6.1} QPS   IM-PIR: {:6.1} QPS",
        cpu_model.throughput_qps(),
        gpu_model.throughput_qps(),
        pim_model.throughput_qps()
    );
    println!(
        "  IM-PIR speedup over CPU-PIR: {:.2}x, over GPU-PIR: {:.2}x",
        cpu_model.latency_seconds / pim_model.latency_seconds,
        gpu_model.latency_seconds / pim_model.latency_seconds
    );
    Ok(())
}
