//! Sharded multi-backend batching through the unified `QueryEngine`.
//!
//! One database, three deployments of the *same* execution layer:
//!
//! 1. a single-shard PIM engine (the paper's configuration);
//! 2. a four-shard PIM engine — each shard owns a quarter of the records
//!    on its own simulated PIM allocation, scanning in parallel;
//! 3. a mixed deployment: PIM shards for the hot front of the database and
//!    a CPU shard for the tail, proving backends compose inside one engine.
//!
//! All three return byte-identical server responses, so the client cannot
//! tell them apart — sharding and backend choice are pure server-side
//! distribution policy, which is exactly what the engine layer factors out.
//!
//! Run with `cargo run --example engine_throughput --release`.

use std::sync::Arc;

use im_pir::core::database::Database;
use im_pir::core::engine::{EngineConfig, QueryEngine};
use im_pir::core::server::cpu::{CpuPirServer, CpuServerConfig};
use im_pir::core::server::pim::ImPirConfig;
use im_pir::core::server::pim::ImPirServer;
use im_pir::core::shard::{ShardPlan, ShardedDatabase};
use im_pir::core::{BatchExecutor, PirClient, PirError};

/// Any backend behind the engine: the example's mixed deployment needs one
/// concrete type, so wrap the two backend kinds in a tiny enum. (The PIM
/// server is boxed — it carries a whole simulated DPU system and would
/// otherwise dwarf the CPU variant.)
#[derive(Debug)]
enum AnyBackend {
    Pim(Box<ImPirServer>),
    Cpu(CpuPirServer),
}

impl im_pir::core::PirServer for AnyBackend {
    fn num_records(&self) -> u64 {
        match self {
            AnyBackend::Pim(s) => s.num_records(),
            AnyBackend::Cpu(s) => s.num_records(),
        }
    }

    fn record_size(&self) -> usize {
        match self {
            AnyBackend::Pim(s) => s.record_size(),
            AnyBackend::Cpu(s) => s.record_size(),
        }
    }

    fn process_query(
        &mut self,
        share: &im_pir::core::QueryShare,
    ) -> Result<(im_pir::core::ServerResponse, im_pir::core::PhaseBreakdown), PirError> {
        match self {
            AnyBackend::Pim(s) => s.process_query(share),
            AnyBackend::Cpu(s) => s.process_query(share),
        }
    }
}

impl BatchExecutor for AnyBackend {
    fn evaluate_selector(
        &self,
        share: &im_pir::core::QueryShare,
    ) -> Result<im_pir::dpf::SelectorVector, PirError> {
        match self {
            AnyBackend::Pim(s) => s.evaluate_selector(share),
            AnyBackend::Cpu(s) => s.evaluate_selector(share),
        }
    }

    fn selector_evaluator(&self) -> im_pir::core::batch::SelectorEvaluator {
        match self {
            AnyBackend::Pim(s) => s.selector_evaluator(),
            AnyBackend::Cpu(s) => s.selector_evaluator(),
        }
    }

    fn wave_width(&self) -> usize {
        match self {
            AnyBackend::Pim(s) => s.wave_width(),
            AnyBackend::Cpu(s) => s.wave_width(),
        }
    }

    fn execute_wave(
        &mut self,
        selectors: &[&im_pir::dpf::SelectorVector],
    ) -> Result<(Vec<Vec<u8>>, im_pir::core::PhaseBreakdown), PirError> {
        match self {
            AnyBackend::Pim(s) => s.execute_wave(selectors),
            AnyBackend::Cpu(s) => s.execute_wave(selectors),
        }
    }
}

fn main() -> Result<(), PirError> {
    let records: u64 = 16_384;
    let database = Arc::new(Database::random(records, 32, 7)?);
    let mut client = PirClient::new(records, 32, 1)?;
    let batch: Vec<u64> = (0..48u64).map(|i| (i * 2_741) % records).collect();
    let (shares, _) = client.generate_batch(&batch)?;
    println!(
        "database: {} records x 32 B; batch of {} queries\n",
        records,
        batch.len()
    );

    let pim_config = ImPirConfig::tiny_test(8).with_clusters(2);

    // 1. Single shard: the whole database behind one PIM backend.
    let single = ShardedDatabase::uniform(database.clone(), 1)?;
    let mut single_engine =
        QueryEngine::sharded(&single, EngineConfig::default(), |shard_db, _| {
            ImPirServer::new(shard_db, pim_config.clone())
        })?;
    let single_outcome = single_engine.execute_batch(&shares)?;
    println!(
        "1 PIM shard      : wall {:.4}s, hybrid {:.4}s, {:.0} QPS (wall)",
        single_outcome.wall_seconds,
        single_outcome.hybrid_seconds(),
        single_outcome.throughput_qps()
    );

    // 2. Four shards: a quarter of the records per PIM backend.
    let quartered = ShardedDatabase::uniform(database.clone(), 4)?;
    let mut sharded_engine =
        QueryEngine::sharded(&quartered, EngineConfig::default(), |shard_db, _| {
            ImPirServer::new(shard_db, pim_config.clone())
        })?;
    let sharded_outcome = sharded_engine.execute_batch(&shares)?;
    println!(
        "4 PIM shards     : wall {:.4}s, hybrid {:.4}s, {:.0} QPS (wall)",
        sharded_outcome.wall_seconds,
        sharded_outcome.hybrid_seconds(),
        sharded_outcome.throughput_qps()
    );

    // 3. Mixed backends: two PIM shards for the first half, one CPU shard
    //    for the tail.
    let half = records / 2;
    let plan = ShardPlan::from_ranges(vec![0..half / 2, half / 2..half, half..records])?;
    let mixed = ShardedDatabase::new(database.clone(), plan)?;
    let mut mixed_engine = QueryEngine::sharded(&mixed, EngineConfig::default(), |shard_db, i| {
        Ok(if i < 2 {
            AnyBackend::Pim(Box::new(ImPirServer::new(shard_db, pim_config.clone())?))
        } else {
            AnyBackend::Cpu(CpuPirServer::new(
                shard_db,
                CpuServerConfig::multithreaded(),
            )?)
        })
    })?;
    let mixed_outcome = mixed_engine.execute_batch(&shares)?;
    println!(
        "2 PIM + 1 CPU    : wall {:.4}s, hybrid {:.4}s, {:.0} QPS (wall)",
        mixed_outcome.wall_seconds,
        mixed_outcome.hybrid_seconds(),
        mixed_outcome.throughput_qps()
    );

    // Distribution policy never leaks into the answers: all three
    // deployments produce byte-identical server responses.
    for i in 0..batch.len() {
        assert_eq!(
            single_outcome.responses[i].payload,
            sharded_outcome.responses[i].payload
        );
        assert_eq!(
            single_outcome.responses[i].payload,
            mixed_outcome.responses[i].payload
        );
    }
    println!(
        "\nall {} responses byte-identical across deployments ✓",
        batch.len()
    );
    Ok(())
}
