//! Quickstart: retrieve one record privately from a two-server IM-PIR
//! deployment running on the simulated UPMEM PIM system.
//!
//! Run with `cargo run --example quickstart --release`.

use std::sync::Arc;

use im_pir::core::database::Database;
use im_pir::core::scheme::TwoServerPir;
use im_pir::core::server::pim::ImPirConfig;
use im_pir::core::PirError;

fn main() -> Result<(), PirError> {
    // A public database of 4096 records of 32 bytes each (≈128 KiB),
    // replicated on both (non-colluding) servers.
    let database = Arc::new(Database::random(4096, 32, 2024)?);
    println!(
        "database: {} records x {} bytes = {} KiB",
        database.num_records(),
        database.record_size(),
        database.size_bytes() / 1024
    );

    // Each server offloads its dpXOR scan to a small simulated PIM system
    // (8 DPUs here; the paper uses 2048 real ones).
    let config = ImPirConfig::tiny_test(8);
    let mut pir = TwoServerPir::with_pim_servers(Arc::clone(&database), config)?;

    // The client asks for record 1234 without either server learning that.
    let wanted_index = 1234;
    let record = pir.query(wanted_index)?;
    assert_eq!(record, database.record(wanted_index));
    println!(
        "retrieved record {wanted_index}: {} bytes, matches the database",
        record.len()
    );

    // The per-phase breakdown of the last query (Algorithm 1 steps ➋–➏).
    if let Some((server_1_phases, _server_2_phases)) = pir.last_phases() {
        let shares = server_1_phases.percentages();
        let names = im_pir::core::PhaseBreakdown::phase_names();
        println!("server 1 phase shares (hybrid time):");
        for (name, share) in names.iter().zip(shares) {
            println!("  {name:>14}: {share:5.1} %");
        }
    }
    Ok(())
}
