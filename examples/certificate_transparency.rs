//! Certificate Transparency auditing scenario (paper §1, §5.2).
//!
//! A client wants to check whether a certificate hash appears in a public
//! CT log shard without revealing *which* certificate it is auditing. The
//! log is a table of 32-byte SHA-256 hashes replicated across two
//! non-colluding servers; IM-PIR answers the lookup privately.
//!
//! Run with `cargo run --example certificate_transparency --release`.

use std::sync::Arc;

use im_pir::core::scheme::TwoServerPir;
use im_pir::core::server::pim::ImPirConfig;
use im_pir::core::PirError;
use im_pir::workload::Scenario;

fn main() -> Result<(), PirError> {
    let scenario = Scenario::certificate_transparency();
    println!(
        "scenario: {} — each record is a {}",
        scenario.name, scenario.record_description
    );

    // Build a scaled-down CT log shard (the paper evaluates multi-GB logs;
    // 2 MiB keeps the example instant on a laptop core).
    let spec = scenario.database_spec_with_bytes(2 << 20, 7);
    let log_shard = Arc::new(spec.build()?);
    println!(
        "log shard: {} certificate hashes ({} KiB)",
        log_shard.num_records(),
        log_shard.size_bytes() / 1024
    );

    let mut pir =
        TwoServerPir::with_pim_servers(Arc::clone(&log_shard), ImPirConfig::tiny_test(8))?;

    // The auditor checks a handful of certificates it is interested in.
    let audited = scenario.sample_queries(5, log_shard.num_records(), 42);
    for index in audited {
        let hash = pir.query(index)?;
        assert_eq!(hash, log_shard.record(index));
        println!("audited log entry {index:>8}: sha256 = {}", hex(&hash));
    }
    println!("all audited entries verified without revealing which certificates were checked");
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
