//! Capacity-aware shard planning over a heterogeneous PIM+CPU+streaming
//! fleet.
//!
//! A uniform shard plan is hostage to its slowest backend: give an
//! out-of-core streaming server (which re-pushes its records over the
//! CPU→DPU link on every scan) the same record count as a preloaded PIM
//! cluster and the whole engine waits on it. The `impir_core::capacity`
//! planner fixes that at deployment time:
//!
//! 1. each backend declares a `CapacityProfile` — records its memory budget
//!    can hold, scan bandwidth per wave slot (from the timed simulator's
//!    cost model for the PIM-family backends), wave width;
//! 2. `ShardPlanner` waterfills the records over effective bandwidth under
//!    the capacity caps (optionally blending in measured probe scans);
//! 3. `QueryEngine::planned` pairs the resulting non-uniform plan with one
//!    backend per shard — heterogeneous kinds included, as boxed trait
//!    objects plug straight into the engine.
//!
//! The example proves three things: the planned layout answers
//! byte-identically to the uniform one (sharding is invisible to clients),
//! it beats the uniform layout's simulated batch time, and the engine's
//! per-shard timings expose predicted-vs-actual skew so a bad plan is
//! observable.
//!
//! Run with `cargo run --example capacity_planning --release`.

use std::sync::Arc;

use im_pir::core::capacity::{measure_scan_bandwidth, ShardPlanner};
use im_pir::core::database::Database;
use im_pir::core::engine::{EngineConfig, QueryEngine};
use im_pir::core::server::cpu::{CpuPirServer, CpuServerConfig};
use im_pir::core::server::pim::{ImPirConfig, ImPirServer};
use im_pir::core::server::streaming::{StreamingConfig, StreamingImPirServer};
use im_pir::core::shard::ShardedDatabase;
use im_pir::core::{PirClient, PirError, UpdatableBackend};

/// One engine, three backend kinds: the forwarding impls on `Box` let a
/// trait object serve as the engine's backend type directly.
type DynBackend = Box<dyn UpdatableBackend + Send + Sync>;

fn main() -> Result<(), PirError> {
    let records: u64 = 4096;
    let database = Arc::new(Database::random(records, 32, 13)?);
    let mut client = PirClient::new(records, 32, 2)?;
    let indices: Vec<u64> = (0..12u64).map(|i| (i * 1_637) % records).collect();
    let (shares, _) = client.generate_batch(&indices)?;

    // The fleet: a healthy PIM allocation, a CPU host, and a deliberately
    // starved streaming backend (1 KiB of per-DPU residency, so every scan
    // re-streams its shard in tiny segments).
    let pim_config = ImPirConfig::tiny_test(8).with_clusters(2);
    let cpu_config = CpuServerConfig::baseline();
    let streaming_config = StreamingConfig::new(ImPirConfig::tiny_test(4), 1024)?;
    let backend = |shard_db: Arc<Database>, shard: usize| -> Result<DynBackend, PirError> {
        Ok(match shard {
            0 => Box::new(ImPirServer::new(shard_db, pim_config.clone())?),
            1 => Box::new(CpuPirServer::new(shard_db, cpu_config.clone())?),
            _ => Box::new(StreamingImPirServer::new(
                shard_db,
                streaming_config.clone(),
            )?),
        })
    };

    // Declared profiles, straight from the configurations — no backend has
    // been built yet. The PIM profile prices its scan through the timed
    // simulator's cost model; capacity comes from per-cluster MRAM.
    let mut planner = ShardPlanner::new(vec![
        pim_config.capacity_profile(32)?,
        cpu_config.capacity_profile()?,
        streaming_config.capacity_profile(32)?,
    ])?;
    println!("declared profiles:");
    for (i, profile) in planner.profiles().iter().enumerate() {
        println!(
            "  backend {i}: {:>12} records capacity, {:>8.3} GB/s x {} wave slot(s)",
            if profile.record_capacity == u64::MAX {
                "unbounded".to_string()
            } else {
                profile.record_capacity.to_string()
            },
            profile.scan_bandwidth_bytes_per_sec / 1e9,
            profile.wave_width
        );
    }

    // Calibration: a short measured probe scan on a small CPU replica,
    // blended into the declared profile (weight 0.5). The same path works
    // for any backend; the CPU one is where declared host constants are
    // most approximate.
    let probe_db = Arc::new(Database::random(1024, 32, 13)?);
    let mut probe = CpuPirServer::new(probe_db, cpu_config.clone())?;
    let measured = measure_scan_bandwidth(&mut probe, 2)?;
    planner.calibrate_with(1, measured, 0.5)?;
    println!(
        "calibrated backend 1 with a measured {:.3} GB/s probe scan\n",
        measured / 1e9
    );

    // Uniform layout: three equal shards, one per backend.
    let uniform = ShardedDatabase::uniform(database.clone(), 3)?;
    let mut uniform_engine = QueryEngine::sharded(&uniform, EngineConfig::default(), backend)?;
    // Planned layout: shard sizes follow capacity.
    let mut planned_engine =
        QueryEngine::planned(database.clone(), EngineConfig::default(), &planner, backend)?;
    println!("uniform layout: {}", uniform_engine.plan().size_summary());
    println!("planned layout: {}\n", planned_engine.plan().size_summary());

    let uniform_outcome = uniform_engine.execute_batch(&shares)?;
    let planned_outcome = planned_engine.execute_batch(&shares)?;

    // 1. Sharding policy never leaks into answers.
    for (u, p) in uniform_outcome
        .responses
        .iter()
        .zip(&planned_outcome.responses)
    {
        assert_eq!(u.payload, p.payload, "layouts must answer identically");
    }
    println!(
        "all {} responses byte-identical across layouts ✓",
        shares.len()
    );

    // 2. The planned layout beats uniform in simulated batch time.
    let uniform_hybrid = uniform_outcome.phase_totals.total_hybrid_seconds();
    let planned_hybrid = planned_outcome.phase_totals.total_hybrid_seconds();
    println!(
        "batch of {}: uniform {:.6}s, planned {:.6}s hybrid ({:.1}x) ✓",
        shares.len(),
        uniform_hybrid,
        planned_hybrid,
        uniform_hybrid / planned_hybrid
    );
    assert!(
        planned_hybrid < uniform_hybrid,
        "the planned layout must beat uniform on this asymmetric fleet"
    );

    // 3. The plan's quality is observable: per-shard predicted vs actual.
    println!("\nplanned per-shard timings (predicted is per query, actual per batch):");
    for timing in planned_engine.shard_timings() {
        println!(
            "  shard {} [{:>5}..{:>5}): predicted {:>9.6}s  actual {:>9.6}s",
            timing.shard,
            timing.range.start,
            timing.range.end,
            timing.predicted_scan_seconds.expect("planned engine"),
            timing.actual_hybrid_seconds()
        );
    }
    println!(
        "scan skew (max/mean): planned {:.2} vs uniform {:.2}",
        planned_engine.scan_skew().expect("batch ran"),
        uniform_engine.scan_skew().expect("batch ran")
    );

    // Updates flow through the planner's layout like any other: both
    // engines stay in lockstep.
    let updates: Vec<(u64, Vec<u8>)> = vec![(0, vec![0xAB; 32]), (records - 1, vec![0xCD; 32])];
    uniform_engine.apply_updates(&updates)?;
    planned_engine.apply_updates(&updates)?;
    let (shares_after, _) = client.generate_batch(&indices)?;
    let uniform_after = uniform_engine.execute_batch(&shares_after)?;
    let planned_after = planned_engine.execute_batch(&shares_after)?;
    for (u, p) in uniform_after.responses.iter().zip(&planned_after.responses) {
        assert_eq!(u.payload, p.payload, "layouts must agree after updates");
    }
    println!("\npost-update responses byte-identical across layouts ✓");
    Ok(())
}
