//! Fault-injection soak tests for the epoch-driven recovery path.
//!
//! Every test drives real query + update traffic through transports that
//! fail on a deterministic schedule ([`FaultSchedule`]), and pins the
//! recovered deployment byte-identical to a fault-free oracle running the
//! same committed traffic:
//!
//! * one-sided update failures (before and after the request reaches the
//!   server) recover automatically on the next operation;
//! * an update batch is applied **exactly once** per replica no matter
//!   where the failure lands — the epoch, not the ack, decides whether a
//!   retry is safe (idempotency regression);
//! * seeded schedules sweep many distinct failure interleavings, each
//!   reproducible from its seed;
//! * the real [`TcpTransport`] reconnects and retries through a
//!   frame-aware [`FaultProxy`] killing its connections, and never
//!   resends an update blindly;
//! * a lag the journal no longer covers fails closed with the typed
//!   [`PirError::JournalTruncated`] over the wire.

use std::sync::Arc;

use im_pir::core::database::Database;
use im_pir::core::engine::{EngineConfig, QueryEngine};
use im_pir::core::fault::{FaultAction, FaultInjectingTransport, FaultProxy, FaultSchedule};
use im_pir::core::scheme::TwoServerPir;
use im_pir::core::server::cpu::{CpuPirServer, CpuServerConfig};
use im_pir::core::transport::{LocalTransport, PirTransport, RetryPolicy, TcpTransport};
use im_pir::core::{PirClient, PirError};
use impir_server::{PirService, ServiceConfig};

const RECORDS: u64 = 96;
const RECORD_BYTES: usize = 8;

fn cpu_engine(db: &Arc<Database>) -> QueryEngine<CpuPirServer> {
    QueryEngine::single(
        CpuPirServer::new(Arc::clone(db), CpuServerConfig::baseline()).unwrap(),
        EngineConfig::default(),
    )
    .unwrap()
}

fn local_transport(db: &Arc<Database>) -> Box<dyn PirTransport> {
    Box::new(LocalTransport::new(cpu_engine(db)))
}

/// A fault-free two-server deployment over `db` — the oracle the faulty
/// deployment must stay byte-identical to.
fn oracle_pir(db: &Arc<Database>) -> TwoServerPir {
    let client = PirClient::new(RECORDS, RECORD_BYTES, 1000).unwrap();
    TwoServerPir::from_transports(client, local_transport(db), local_transport(db)).unwrap()
}

/// Builds a deployment whose replicas fail on the given schedules.
///
/// Construction itself consumes one operation per transport (the geometry
/// handshake), so callers must not schedule a fault at index 0.
fn faulty_pir(
    db: &Arc<Database>,
    schedule_1: FaultSchedule,
    schedule_2: FaultSchedule,
) -> TwoServerPir {
    let client = PirClient::new(RECORDS, RECORD_BYTES, 7).unwrap();
    TwoServerPir::from_transports(
        client,
        Box::new(FaultInjectingTransport::new(
            local_transport(db),
            schedule_1,
        )),
        Box::new(FaultInjectingTransport::new(
            local_transport(db),
            schedule_2,
        )),
    )
    .unwrap()
}

/// Re-indexes a seeded schedule so operation 0 (the construction
/// handshake) always runs clean.
fn skipping_handshake(seed: u64, ops: u64, one_in: u64) -> FaultSchedule {
    let raw = FaultSchedule::seeded(seed, ops, one_in);
    let mut shifted = FaultSchedule::none();
    for index in 1..ops {
        if let Some(action) = raw.action_at(index) {
            shifted = shifted.with_fault(index, action);
        }
    }
    shifted
}

#[test]
fn one_sided_update_failures_recover_byte_identically() {
    let db = Arc::new(Database::random(RECORDS, RECORD_BYTES, 3).unwrap());
    let mut oracle = oracle_pir(&db);
    // Server 0 loses one update before it lands (round 0) and one ack
    // after the commit (round 3); server 1 drops round 2's update, which
    // must come back via journal replay. Indices are chosen against the
    // deterministic operation interleaving (handshake = op 0, every
    // apply_updates opens with one epoch probe per replica to converge
    // them, and recovery's own probes/replays consume further ops).
    let schedule_1 = FaultSchedule::none()
        .with_fault(2, FaultAction::DropBeforeRequest)
        .with_fault(13, FaultAction::DropAfterRequest);
    let schedule_2 = FaultSchedule::none().with_fault(6, FaultAction::DropBeforeRequest);
    let mut pir = faulty_pir(&db, schedule_1, schedule_2);

    for round in 0..4u8 {
        let batch = vec![
            (
                u64::from(round) * 11 % RECORDS,
                vec![round + 1; RECORD_BYTES],
            ),
            (
                u64::from(round) * 29 % RECORDS,
                vec![round + 101; RECORD_BYTES],
            ),
        ];
        // Epoch-pinned recovery absorbs every scheduled fault here: the
        // drops land on update / epoch-info operations whose retries are
        // proven safe, so the API-level call still succeeds.
        let (outcome_1, outcome_2) = pir.apply_updates(&batch).unwrap();
        assert_eq!(
            outcome_1.epoch,
            u64::from(round) + 1,
            "exactly-once per round"
        );
        assert_eq!(outcome_1.epoch, outcome_2.epoch);
        oracle.apply_updates(&batch).unwrap();
    }
    for index in 0..RECORDS {
        assert_eq!(
            pir.query(index).unwrap(),
            oracle.query(index).unwrap(),
            "record {index} diverged from the fault-free oracle"
        );
    }
}

#[test]
fn update_ack_loss_is_not_reapplied() {
    let db = Arc::new(Database::random(RECORDS, RECORD_BYTES, 4).unwrap());
    // The ack of server 0's very first update is lost (op 0 is the
    // handshake, op 1 the entry epoch probe, op 2 the update itself). A
    // blind resend would leave server 0 at epoch 2 and the content
    // XOR-corrupted under any non-idempotent backend; the epoch pin must
    // recognize the commit.
    let schedule_1 = FaultSchedule::none().with_fault(2, FaultAction::DropAfterRequest);
    let mut pir = faulty_pir(&db, schedule_1, FaultSchedule::none());
    let (outcome_1, outcome_2) = pir.apply_updates(&[(9, vec![0xEE; RECORD_BYTES])]).unwrap();
    assert_eq!(
        outcome_1.epoch, 1,
        "applied exactly once despite the lost ack"
    );
    assert_eq!(outcome_2.epoch, 1);
    assert_eq!(pir.server_info(0).unwrap().epoch, 1);
    assert_eq!(pir.server_info(1).unwrap().epoch, 1);
    assert_eq!(pir.query(9).unwrap(), vec![0xEE; RECORD_BYTES]);
}

#[test]
fn divergent_entry_is_converged_not_misclassified_as_committed() {
    // Regression for the peer-relative commit inference: a previous
    // apply_updates can legitimately fail with the replicas divergent
    // (server 0 one ahead) when its error-path resync faults too. On the
    // next batch, a transient failure that never reached server 0 must
    // NOT be read as "committed" just because server 0 is ahead of its
    // peer — that would skip the batch on server 0, apply it on server 1
    // only, and silently equalize the epochs over different contents.
    // The pre-pinned epoch proves non-commitment, so the batch must land
    // on BOTH replicas and every record must match the oracle.
    let db = Arc::new(Database::random(RECORDS, RECORD_BYTES, 9).unwrap());
    let mut oracle = oracle_pir(&db);
    let schedule_1 = FaultSchedule::none()
        // Op 4: the error-path replay of batch 1 to server 1 — its
        // failure leaves the call with the replicas divergent.
        .with_fault(4, FaultAction::DropBeforeRequest)
        // Op 9: batch 2's first send to server 0, after the entry resync
        // (ops 6-8 on this side) has converged the replicas.
        .with_fault(9, FaultAction::DropBeforeRequest);
    // Op 2: batch 1 never reaches server 1.
    let schedule_2 = FaultSchedule::none().with_fault(2, FaultAction::DropBeforeRequest);
    let mut pir = faulty_pir(&db, schedule_1, schedule_2);

    let batch_1 = vec![(5, vec![0x11; RECORD_BYTES])];
    let batch_2 = vec![(5, vec![0x22; RECORD_BYTES]), (7, vec![0x33; RECORD_BYTES])];

    // Batch 1 commits on server 0, faults on server 1, and the error-path
    // resync faults too: the call fails with the replicas divergent.
    assert!(pir.apply_updates(&batch_1).is_err());
    assert_eq!(pir.server_info(0).unwrap().epoch, 1);
    assert_eq!(pir.server_info(1).unwrap().epoch, 0);
    oracle.apply_updates(&batch_1).unwrap();

    // Batch 2: the entry resync replays batch 1 to server 1 first, then
    // the faulted send is proven uncommitted and retried — exactly once
    // on each replica.
    let (outcome_1, outcome_2) = pir.apply_updates(&batch_2).unwrap();
    assert_eq!(outcome_1.epoch, 2);
    assert_eq!(outcome_2.epoch, 2);
    oracle.apply_updates(&batch_2).unwrap();
    for index in 0..RECORDS {
        assert_eq!(
            pir.query(index).unwrap(),
            oracle.query(index).unwrap(),
            "record {index} diverged from the fault-free oracle"
        );
    }
}

/// Drives mixed query/update traffic through seeded fault schedules on
/// BOTH replicas. API calls may fail while faults are firing, but the
/// replicas must never diverge from each other unrecoverably, an update
/// batch must land exactly 0 or 1 times (never 2 — that is the epoch
/// jumping past the oracle), and once the schedule is exhausted the
/// deployment must converge byte-identically to the fault-free oracle.
fn soak(seed: u64) {
    const SCHEDULE_OPS: u64 = 80;
    let db = Arc::new(Database::random(RECORDS, RECORD_BYTES, seed).unwrap());
    let mut oracle = oracle_pir(&db);
    let mut pir = faulty_pir(
        &db,
        skipping_handshake(seed.wrapping_mul(2) + 1, SCHEDULE_OPS, 5),
        skipping_handshake(seed.wrapping_mul(2) + 2, SCHEDULE_OPS, 5),
    );
    let mut committed_epoch = 0u64;

    for round in 0..12u64 {
        let fill = (seed as u8).wrapping_add(round as u8).wrapping_add(1);
        let batch = vec![
            (round * 7 % RECORDS, vec![fill; RECORD_BYTES]),
            ((round * 13 + 5) % RECORDS, vec![fill ^ 0xFF; RECORD_BYTES]),
        ];
        match pir.apply_updates(&batch) {
            Ok((outcome_1, _)) => {
                assert_eq!(
                    outcome_1.epoch,
                    committed_epoch + 1,
                    "seed {seed} round {round}: a batch landed more than once"
                );
                committed_epoch = outcome_1.epoch;
                oracle.apply_updates(&batch).unwrap();
            }
            Err(_) => {
                // Faults swallowed the call; whether the batch committed is
                // resolved the same way the scheme resolves it — by epoch.
                let epoch = converge(&mut pir, seed, round);
                assert!(
                    epoch == committed_epoch || epoch == committed_epoch + 1,
                    "seed {seed} round {round}: epoch {epoch} after a failed apply of \
                     batch {committed_epoch} -> a batch was duplicated or lost"
                );
                if epoch == committed_epoch + 1 {
                    committed_epoch = epoch;
                    oracle.apply_updates(&batch).unwrap();
                }
            }
        }
        for probe in 0..3u64 {
            let index = (round * 17 + probe * 31) % RECORDS;
            // A faulted query may fail — but it must NEVER return bytes
            // that differ from the oracle's fault-free answer.
            if let Ok(record) = pir.query(index) {
                assert_eq!(
                    record,
                    oracle.query(index).unwrap(),
                    "seed {seed} round {round}: silent wrong answer for record {index}"
                );
            }
        }
    }

    // Burn through whatever remains of both schedules with cheap probes
    // (each consumes one operation on one replica, faults tolerated) so
    // the tail below runs on a healed network.
    for _ in 0..SCHEDULE_OPS {
        let _ = pir.server_info(0);
        let _ = pir.server_info(1);
    }
    // Past the schedule every operation runs clean: the deployment must
    // converge and match the oracle on every record.
    let epoch = converge(&mut pir, seed, 99);
    assert_eq!(epoch, committed_epoch, "seed {seed}: tail convergence");
    for index in 0..RECORDS {
        assert_eq!(
            pir.query(index).unwrap(),
            oracle.query(index).unwrap(),
            "seed {seed}: record {index} diverged from the fault-free oracle"
        );
    }
}

/// Resyncs until the replicas agree, tolerating scheduled faults on the
/// resync operations themselves (the schedules are finite, so this always
/// terminates well before the attempt bound).
fn converge(pir: &mut TwoServerPir, seed: u64, round: u64) -> u64 {
    for _ in 0..100 {
        if let Ok(epoch) = pir.resync_replicas() {
            return epoch;
        }
    }
    panic!("seed {seed} round {round}: replicas failed to converge in 100 resync attempts");
}

#[test]
fn seeded_fault_schedules_all_converge_to_the_oracle() {
    for seed in [11, 29, 47, 63, 88] {
        soak(seed);
    }
}

#[test]
fn tcp_transport_reconnects_through_dropped_connections() {
    let db = Arc::new(Database::random(RECORDS, RECORD_BYTES, 5).unwrap());
    let service =
        PirService::bind(cpu_engine(&db), "127.0.0.1:0", ServiceConfig::default()).unwrap();
    // Frame indices: 0 = Hello, 1 = first query, 2 = second query
    // (dropped; reconnect Hello = 3, resend = 4), 5 = third query
    // (reply truncated mid-frame; reconnect = 6, resend = 7).
    let schedule = FaultSchedule::none()
        .with_fault(2, FaultAction::DropBeforeRequest)
        .with_fault(5, FaultAction::TruncateReply);
    let proxy = FaultProxy::start(service.addr(), schedule).unwrap();
    let mut transport = TcpTransport::connect_with(proxy.addr(), RetryPolicy::resilient()).unwrap();

    let mut client = PirClient::new(RECORDS, RECORD_BYTES, 2).unwrap();
    let mut oracle = cpu_engine(&db);
    for query in 0..3u64 {
        let (shares, _) = client.generate_batch(&[query * 31 % RECORDS]).unwrap();
        let batch = transport.query_batch(&shares).unwrap();
        let expected = oracle.execute_batch(&shares).unwrap();
        assert_eq!(
            batch.responses, expected.responses,
            "query {query} not byte-identical after recovery"
        );
    }
    assert!(proxy.frames_seen() >= 8, "the faults did fire");
    drop(transport);
    proxy.shutdown();
    service.shutdown();
}

#[test]
fn tcp_update_whose_ack_is_lost_is_not_resent() {
    let db = Arc::new(Database::random(RECORDS, RECORD_BYTES, 6).unwrap());
    let service =
        PirService::bind(cpu_engine(&db), "127.0.0.1:0", ServiceConfig::default()).unwrap();
    // Frame 1 (the update) executes on the server; its ack is dropped.
    let schedule = FaultSchedule::none().with_fault(1, FaultAction::DropAfterRequest);
    let proxy = FaultProxy::start(service.addr(), schedule).unwrap();
    let mut transport = TcpTransport::connect_with(proxy.addr(), RetryPolicy::resilient()).unwrap();

    let err = transport
        .apply_updates(&[(3, vec![0xBC; RECORD_BYTES])])
        .unwrap_err();
    assert!(
        matches!(err, PirError::Protocol { .. }),
        "ambiguous update outcome must surface, not be retried blindly: {err:?}"
    );
    // The transport reconnects for the (idempotent) epoch probe; the epoch
    // proves the batch was applied exactly ONCE — a blind resend would
    // read 2 here.
    assert_eq!(transport.epoch_info().unwrap().current_epoch, 1);
    drop(transport);
    proxy.shutdown();
    service.shutdown();
}

#[test]
fn large_replays_are_chunked_across_bounded_frames() {
    let db = Arc::new(Database::random(RECORDS, RECORD_BYTES, 10).unwrap());
    // A 64-byte replay frame bound fits only TWO single-record batches
    // per reply (each batch body is 24 bytes here), so a five-batch
    // replay must cross several round trips — and still arrive complete,
    // in order.
    let service = PirService::bind(
        cpu_engine(&db),
        "127.0.0.1:0",
        ServiceConfig {
            max_replay_frame_bytes: 64,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut transport = TcpTransport::connect(service.addr()).unwrap();
    let mut expected = Vec::new();
    for round in 0..5u8 {
        let batch = vec![(u64::from(round), vec![round; RECORD_BYTES])];
        transport.apply_updates(&batch).unwrap();
        expected.push(batch);
    }
    assert_eq!(transport.replay_updates(0).unwrap(), expected);
    // A partially-caught-up replica gets exactly its missing suffix.
    assert_eq!(transport.replay_updates(3).unwrap(), expected[3..].to_vec());
    // A single journalled batch that cannot fit any reply frame must fail
    // with an actionable error, never an empty reply (the client would
    // read that as "caught up" and silently stay lagging).
    let oversized: Vec<(u64, Vec<u8>)> = (0..4u64).map(|i| (i, vec![7; RECORD_BYTES])).collect();
    transport.apply_updates(&oversized).unwrap();
    let err = transport.replay_updates(5).unwrap_err();
    assert!(
        err.to_string().contains("replay frame bound"),
        "unhelpful error: {err}"
    );
    drop(transport);
    service.shutdown();
}

#[test]
fn journal_truncated_lag_fails_closed_over_the_wire() {
    let db = Arc::new(Database::random(RECORDS, RECORD_BYTES, 8).unwrap());
    let engine = QueryEngine::single(
        CpuPirServer::new(Arc::clone(&db), CpuServerConfig::baseline()).unwrap(),
        EngineConfig {
            journal_batches: 1,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let service = PirService::bind(engine, "127.0.0.1:0", ServiceConfig::default()).unwrap();
    let mut transport = TcpTransport::connect(service.addr()).unwrap();

    for round in 0..3u8 {
        transport
            .apply_updates(&[(u64::from(round), vec![round; RECORD_BYTES])])
            .unwrap();
    }
    // Replayable: only the last batch (retention 1).
    let replayed = transport.replay_updates(2).unwrap();
    assert_eq!(replayed.len(), 1);
    assert_eq!(replayed[0], vec![(2u64, vec![2u8; RECORD_BYTES])]);
    // A replica stuck at epoch 0 is beyond the journal: the typed error
    // crosses the wire intact so the client can fail closed actionably.
    match transport.replay_updates(0) {
        Err(PirError::JournalTruncated {
            from_epoch: 0,
            oldest_replayable: 2,
            current_epoch: 3,
        }) => {}
        other => panic!("expected the typed JournalTruncated error, got {other:?}"),
    }
    drop(transport);
    service.shutdown();
}
