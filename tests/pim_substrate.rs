//! Integration tests exercising the UPMEM PIM simulator through the public
//! facade, including failure injection (capacity overflows, malformed
//! layouts) and cost-model sanity.

use im_pir::core::database::Database;
use im_pir::core::server::pim::{DpXorKernel, ImPirConfig, ImPirServer};
use im_pir::pim::{
    ClusterLayout, CostModel, DpuProgram, KernelMeter, PimConfig, PimError, PimSystem,
};
use std::sync::Arc;

#[test]
fn paper_configuration_allocates_and_validates() {
    let config = PimConfig::paper_server();
    config.validate().unwrap();
    // Do not allocate 2048 DPUs here (lazy MRAM keeps it cheap, but the
    // Vec of banks alone is unnecessary for this test) — validate a scaled
    // version with identical per-DPU parameters instead.
    let mut scaled = config.clone();
    scaled.dpus = 64;
    let system = PimSystem::new(scaled).unwrap();
    assert_eq!(system.dpu_count(), 64);
    assert_eq!(system.config().tasklets_per_dpu, 16);
}

#[test]
fn capacity_violations_surface_as_errors_not_corruption() {
    let mut system = PimSystem::new(PimConfig::tiny_test(2, 1024)).unwrap();
    assert!(matches!(
        system.push_to_dpu(0, 1000, &[0u8; 100]),
        Err(PimError::MramCapacityExceeded { .. })
    ));
    assert!(matches!(
        system.push_to_dpu(5, 0, &[0u8; 8]),
        Err(PimError::InvalidDpu { .. })
    ));
    // A database that cannot fit the per-DPU MRAM is rejected up front by
    // the IM-PIR server constructor.
    let db = Arc::new(Database::random(100_000, 32, 0).unwrap());
    let config = ImPirConfig {
        pim: PimConfig::tiny_test(2, 64 * 1024),
        clusters: 1,
        eval_threads: 1,
    };
    assert!(ImPirServer::new(db, config).is_err());
}

#[test]
fn dpxor_kernel_faults_on_inconsistent_headers() {
    // Build a server, then corrupt one DPU's header record size and check
    // the kernel reports a fault instead of returning wrong data.
    let db = Arc::new(Database::random(64, 32, 1).unwrap());
    let config = ImPirConfig {
        pim: PimConfig::tiny_test(2, 1 << 20),
        clusters: 1,
        eval_threads: 1,
    };
    let server = ImPirServer::new(db, config).unwrap();
    let layout = server.dpu_layout();

    // Reproduce the same preload in a standalone system, but with a
    // corrupted record-size field.
    let mut system = PimSystem::new(PimConfig::tiny_test(1, 1 << 20)).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&32u64.to_le_bytes()); // record count
    header.extend_from_slice(&16u64.to_le_bytes()); // wrong record size
    system.push_to_dpu(0, 0, &header).unwrap();
    system.push_to_dpu(0, 16, &vec![0u8; 32 * 32]).unwrap();
    system
        .push_to_dpu(0, layout.selector_offset, &[0u8; 8])
        .unwrap();
    let kernel = DpXorKernel::new(layout);
    assert!(matches!(
        system.launch_all(&kernel),
        Err(PimError::KernelFault { .. })
    ));
}

#[test]
fn cost_model_scales_with_dpu_count_and_data_volume() {
    let model = CostModel::new(PimConfig::paper_server());
    let small = KernelMeter {
        mram_bytes_read: 1 << 20,
        mram_bytes_written: 32,
        instructions: 1 << 17,
    };
    let large = KernelMeter {
        mram_bytes_read: 32 << 20,
        mram_bytes_written: 32,
        instructions: 32 << 17,
    };
    assert!(model.dpu_kernel_seconds(&large) > model.dpu_kernel_seconds(&small));
    assert!(model.host_to_dpu_seconds(1 << 30) > model.host_to_dpu_seconds(1 << 20));
    // A 2048-DPU launch over 1 GB of database streams ~512 KiB per DPU and
    // should complete in roughly a millisecond of simulated kernel time —
    // the magnitude that makes IM-PIR's dpXOR negligible next to Eval.
    let per_dpu = KernelMeter {
        mram_bytes_read: (1u64 << 30) / 2048,
        mram_bytes_written: 32,
        instructions: ((1u64 << 30) / 2048 / 32) * 4,
    };
    let launch = model.launch_seconds(&vec![per_dpu; 16]);
    assert!(launch > 0.0 && launch < 0.01, "launch = {launch}");
}

#[test]
fn cluster_layouts_cover_all_dpus_exactly_once() {
    for (total, clusters) in [(2048usize, 8usize), (100, 7), (16, 16)] {
        let layout = ClusterLayout::new(total, clusters).unwrap();
        let covered: usize = layout.iter().map(|r| r.len()).sum();
        assert_eq!(covered, total);
    }
    assert!(ClusterLayout::new(4, 8).is_err());
}

#[test]
fn custom_kernels_can_be_written_against_the_public_api() {
    use im_pir::pim::{DpuContext, TaskletContext};

    /// Counts the bytes equal to a marker value in each DPU's MRAM window.
    struct CountKernel {
        bytes: usize,
        marker: u8,
    }

    impl DpuProgram for CountKernel {
        type TaskletOutput = u64;
        type DpuOutput = u64;

        fn run_tasklet(&self, ctx: &mut TaskletContext<'_>) -> Result<u64, PimError> {
            let (start, count) = ctx.partition(self.bytes);
            if count == 0 {
                return Ok(0);
            }
            let data = ctx.mram_read(start, count)?;
            Ok(data.iter().filter(|byte| **byte == self.marker).count() as u64)
        }

        fn reduce(&self, _ctx: &mut DpuContext<'_>, partials: Vec<u64>) -> Result<u64, PimError> {
            Ok(partials.into_iter().sum())
        }
    }

    let mut system = PimSystem::new(PimConfig::tiny_test(3, 4096)).unwrap();
    let buffers: Vec<Vec<u8>> = (0..3)
        .map(|dpu| {
            (0..256)
                .map(|i| u8::from((i + dpu) % 4 == 0) * 0xaa)
                .collect()
        })
        .collect();
    let expected: Vec<u64> = buffers
        .iter()
        .map(|buffer| buffer.iter().filter(|byte| **byte == 0xaa).count() as u64)
        .collect();
    system.scatter_to_mram(0, &buffers).unwrap();
    let outcome = system
        .launch_all(&CountKernel {
            bytes: 256,
            marker: 0xaa,
        })
        .unwrap();
    assert_eq!(outcome.results, expected);
}
