//! Acceptance test for the service layer: a real-socket deployment
//! (`PirService` sessions over `TcpTransport`) must answer **byte
//! identically** to the in-process `LocalTransport` path over the same
//! topology replica — before and after bulk updates.
//!
//! Every server here is built from a [`FleetTopology`] with
//! [`build_service`] — the same construction path as
//! `impir-server --config` — and the in-process comparison engines come
//! from [`FleetTopology::build_engine`], so the equivalence being pinned
//! is between *transports*, never between two hand-wired engines that
//! could drift apart. Ephemeral ports (`:0`) keep parallel test runs from
//! colliding; clients dial whatever the services actually bound.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use im_pir::core::multi_server::NServerNaivePir;
use im_pir::core::scheme::TwoServerPir;
use im_pir::core::topology::{
    BackendSpec, FleetTopology, RebalanceMode, ReplicaSpec, SessionTier, ShardPolicy,
};
use im_pir::core::transport::{LocalTransport, MuxConnection, PirTransport, TcpTransport};
use im_pir::core::wire::{Frame, WIRE_VERSION};
use im_pir::core::{PirClient, PirError};
use impir_server::{build_service, build_service_with, ServiceConfig};

const RECORDS: u64 = 600;
const RECORD_BYTES: usize = 24;
const DB_SEED: u64 = 1717;

/// A single-replica CPU fleet with `shards` uniform shards.
fn cpu_fleet(shards: usize) -> FleetTopology {
    let mut topology = FleetTopology::new(RECORDS, RECORD_BYTES, DB_SEED);
    topology.sharding = ShardPolicy::Uniform(shards);
    topology
        .replicas
        .push(ReplicaSpec::tcp("alpha", "127.0.0.1:0"));
    topology
}

#[test]
fn tcp_and_local_transports_answer_byte_identically_across_updates() {
    let indices = [0u64, 1, 299, 300, 599, 123, 123];
    let updates: Vec<(u64, Vec<u8>)> = vec![
        (0, vec![0x11; RECORD_BYTES]),
        (299, vec![0x22; RECORD_BYTES]),
        (300, vec![0x33; RECORD_BYTES]),
        (599, vec![0x44; RECORD_BYTES]),
    ];

    for shards in [1usize, 3] {
        // The same topology replica behind a socket and behind a direct
        // call.
        let topology = cpu_fleet(shards);
        let service = build_service(&topology, 0).unwrap();
        let mut remote = TcpTransport::connect(service.addr()).unwrap();
        let mut local = LocalTransport::new(topology.build_engine(0).unwrap());

        // Both transports describe the same server.
        let remote_info = remote.server_info().unwrap();
        let local_info = local.server_info().unwrap();
        assert_eq!(remote_info, local_info, "shards={shards}");

        // Identical client seeds -> identical shares for both paths.
        let mut client = PirClient::new(RECORDS, RECORD_BYTES, 5).unwrap();
        let (shares, _) = client.generate_batch(&indices).unwrap();

        let over_wire = remote.query_batch(&shares).unwrap();
        let in_process = local.query_batch(&shares).unwrap();
        assert_eq!(
            over_wire.responses, in_process.responses,
            "pre-update responses must be byte-identical (shards={shards})"
        );
        assert_eq!(over_wire.epoch, in_process.epoch);
        // Wire-cost accounting is transport-independent.
        assert_eq!(over_wire.upload_bytes, in_process.upload_bytes);
        assert_eq!(over_wire.download_bytes, in_process.download_bytes);

        // Apply the same update batch through both transports.
        let remote_ack = remote.apply_updates(&updates).unwrap();
        let local_ack = local.apply_updates(&updates).unwrap();
        assert_eq!(remote_ack.records_updated, local_ack.records_updated);
        assert_eq!(remote_ack.epoch, 1);
        assert_eq!(local_ack.epoch, 1);

        let over_wire = remote.query_batch(&shares).unwrap();
        let in_process = local.query_batch(&shares).unwrap();
        assert_eq!(
            over_wire.responses, in_process.responses,
            "post-update responses must be byte-identical (shards={shards})"
        );
        assert_eq!(over_wire.epoch, 1);

        // Selector scans (the n-server path) agree too, and carry the
        // post-update epoch so mid-query interleavings are detectable.
        let selector: impir_dpf::SelectorVector = (0..RECORDS).map(|i| i % 7 == 2).collect();
        let wire_scan = remote.scan_selector(&selector).unwrap();
        let local_scan = local.scan_selector(&selector).unwrap();
        assert_eq!(wire_scan.payload, local_scan.payload, "shards={shards}");
        assert_eq!(wire_scan.epoch, 1);
        assert_eq!(local_scan.epoch, 1);

        service.shutdown();
    }
}

#[test]
fn event_tier_answers_byte_identically_to_the_threaded_tier_across_updates() {
    // The same topology served by both session tiers, compared against
    // the same in-process oracle — pre- and post-update. This is the
    // contract that lets `session-tier = events` swap in transparently:
    // the tiers share every reply constructor, so nothing on the wire
    // reveals which one answered.
    let indices = [0u64, 1, 299, 300, 599, 123, 123];
    let updates: Vec<(u64, Vec<u8>)> = vec![
        (0, vec![0x11; RECORD_BYTES]),
        (299, vec![0x22; RECORD_BYTES]),
        (599, vec![0x44; RECORD_BYTES]),
    ];

    let mut threaded_topology = cpu_fleet(3);
    threaded_topology.session_tier = SessionTier::Threads;
    let mut event_topology = cpu_fleet(3);
    event_topology.session_tier = SessionTier::Events;

    let threaded = build_service(&threaded_topology, 0).unwrap();
    let events = build_service(&event_topology, 0).unwrap();
    let mut over_threads = TcpTransport::connect(threaded.addr()).unwrap();
    let mut over_events = TcpTransport::connect(events.addr()).unwrap();
    let mut oracle = LocalTransport::new(cpu_fleet(3).build_engine(0).unwrap());

    assert_eq!(
        over_events.server_info().unwrap(),
        over_threads.server_info().unwrap()
    );

    let mut client = PirClient::new(RECORDS, RECORD_BYTES, 5).unwrap();
    let (shares, _) = client.generate_batch(&indices).unwrap();
    let threaded_reply = over_threads.query_batch(&shares).unwrap();
    let event_reply = over_events.query_batch(&shares).unwrap();
    let oracle_reply = oracle.query_batch(&shares).unwrap();
    assert_eq!(threaded_reply.responses, oracle_reply.responses);
    assert_eq!(
        event_reply.responses, oracle_reply.responses,
        "pre-update responses must not depend on the session tier"
    );
    assert_eq!(event_reply.upload_bytes, threaded_reply.upload_bytes);
    assert_eq!(event_reply.download_bytes, threaded_reply.download_bytes);

    for transport in [
        &mut over_threads as &mut dyn PirTransport,
        &mut over_events,
        &mut oracle,
    ] {
        assert_eq!(transport.apply_updates(&updates).unwrap().epoch, 1);
    }

    let threaded_reply = over_threads.query_batch(&shares).unwrap();
    let event_reply = over_events.query_batch(&shares).unwrap();
    let oracle_reply = oracle.query_batch(&shares).unwrap();
    assert_eq!(threaded_reply.responses, oracle_reply.responses);
    assert_eq!(
        event_reply.responses, oracle_reply.responses,
        "post-update responses must not depend on the session tier"
    );
    assert_eq!(event_reply.epoch, 1);

    drop(over_threads);
    drop(over_events);
    threaded.shutdown();
    events.shutdown();
}

#[test]
fn interleaved_mux_sessions_match_separate_connections() {
    // N logical sessions multiplexed onto ONE TCP connection, driven
    // concurrently from N threads, must answer byte-identically to the
    // same N query streams issued over N separate connections: session
    // multiplexing is invisible to the PIR protocol.
    const SESSIONS: usize = 4;
    const WAVES: usize = 3;
    let topology = cpu_fleet(2);
    let service = build_service(&topology, 0).unwrap();

    let share_batches: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let mut client = PirClient::new(RECORDS, RECORD_BYTES, 40 + i as u64).unwrap();
            let indices = [i as u64, 100 + i as u64, 599 - i as u64];
            let (shares, _) = client.generate_batch(&indices).unwrap();
            shares
        })
        .collect();

    // The baseline: each stream over its own dedicated connection.
    let separate: Vec<Vec<_>> = share_batches
        .iter()
        .map(|shares| {
            let mut transport = TcpTransport::connect(service.addr()).unwrap();
            (0..WAVES)
                .map(|_| transport.query_batch(shares).unwrap())
                .collect()
        })
        .collect();

    // The same streams interleaved on one multiplexed connection; the
    // barrier makes every session fire its waves concurrently so the
    // frames genuinely interleave on the socket.
    let conn = MuxConnection::connect(service.addr()).unwrap();
    let barrier = Arc::new(std::sync::Barrier::new(SESSIONS));
    let multiplexed: Vec<Vec<_>> = std::thread::scope(|scope| {
        let handles: Vec<_> = share_batches
            .iter()
            .map(|shares| {
                let mut session = conn.session().unwrap();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    (0..WAVES)
                        .map(|_| session.query_batch(shares).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (session, (mux_waves, separate_waves)) in multiplexed.iter().zip(&separate).enumerate() {
        for (wave, (muxed, dedicated)) in mux_waves.iter().zip(separate_waves).enumerate() {
            assert_eq!(
                muxed.responses, dedicated.responses,
                "session {session} wave {wave}: multiplexed responses must be \
                 byte-identical to a dedicated connection"
            );
            assert_eq!(muxed.epoch, dedicated.epoch);
        }
    }

    drop(conn);
    service.shutdown();
}

/// Writes one frame to a raw socket — the hostile-client's-eye view of
/// the protocol, no transport layer in between.
fn write_frame(stream: &mut TcpStream, frame: &Frame) {
    stream.write_all(&frame.encode().unwrap()).unwrap();
}

/// Reads one length-prefixed frame from a raw socket.
fn read_frame(stream: &mut TcpStream) -> Frame {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).unwrap();
    let body_len = u32::from_le_bytes(len) as usize;
    let mut buf = len.to_vec();
    buf.resize(4 + body_len, 0);
    stream.read_exact(&mut buf[4..]).unwrap();
    Frame::decode(&buf).unwrap()
}

#[test]
fn event_tier_sheds_overload_with_typed_refusals_and_recovers() {
    // Saturate a 1-slot admission queue: a bulk update occupies the
    // dispatcher while three multiplexed query sessions arrive on the
    // same connection. At least one must be refused with the *typed*
    // `Overloaded` frame — not a generic error, never a dropped
    // connection — and after the queue drains the very same sessions
    // keep serving.
    let mut topology = cpu_fleet(1);
    topology.session_tier = SessionTier::Events;
    let service = build_service_with(
        &topology,
        0,
        ServiceConfig {
            session_tier: SessionTier::Events,
            admission_capacity: 1,
            ..ServiceConfig::default()
        },
    )
    .unwrap();

    let mut stream = TcpStream::connect(service.addr()).unwrap();
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: WIRE_VERSION,
        },
    );
    assert!(matches!(
        read_frame(&mut stream),
        Frame::HelloAck {
            version: WIRE_VERSION,
            ..
        }
    ));

    // A bulk update big enough to hold the dispatcher for a while.
    let updates: Vec<(u64, Vec<u8>)> = (0..120_000u64)
        .map(|i| (i % RECORDS, vec![(i % 251) as u8; RECORD_BYTES]))
        .collect();
    let mut client = PirClient::new(RECORDS, RECORD_BYTES, 31).unwrap();
    let (shares, _) = client.generate_batch(&[0, 299, 599]).unwrap();

    // One burst, written back-to-back before reading any reply: the
    // update grabs the dispatcher, the first query takes the only
    // admission slot, the rest must be shed.
    write_frame(
        &mut stream,
        &wrap(
            1,
            Frame::UpdateBatch {
                updates: updates.clone(),
            },
        ),
    );
    for session in 2..=4u32 {
        write_frame(
            &mut stream,
            &wrap(
                session,
                Frame::QueryBatch {
                    shares: shares.clone(),
                },
            ),
        );
    }

    let mut shed = Vec::new();
    let mut answered = Vec::new();
    let mut update_acked = false;
    for _ in 0..4 {
        match read_frame(&mut stream) {
            Frame::Mux { session: 1, frame } => {
                assert!(matches!(*frame, Frame::UpdateAck { outcome } if outcome.epoch == 1));
                update_acked = true;
            }
            Frame::Mux { session, frame } => match *frame {
                Frame::Overloaded { retry_after_ms } => {
                    assert!(retry_after_ms > 0, "the backoff hint must be usable");
                    shed.push(session);
                }
                Frame::ResponseBatch { epoch, .. } => {
                    // An admitted query ran after the update the
                    // dispatcher was busy with — never against the
                    // pre-update database.
                    assert_eq!(epoch, 1);
                    answered.push(session);
                }
                other => panic!("unexpected reply for session {session}: {other:?}"),
            },
            other => panic!("unexpected unmuxed reply: {other:?}"),
        }
    }
    assert!(update_acked);
    assert!(
        !shed.is_empty(),
        "a full admission queue must shed at least one of the burst queries"
    );

    // Recovery: the shed sessions retry on the SAME connection and get
    // real answers, identical to the in-process oracle's.
    let mut oracle = LocalTransport::new(cpu_fleet(1).build_engine(0).unwrap());
    oracle.apply_updates(&updates).unwrap();
    let expected = oracle.query_batch(&shares).unwrap();
    for session in shed {
        write_frame(
            &mut stream,
            &wrap(
                session,
                Frame::QueryBatch {
                    shares: shares.clone(),
                },
            ),
        );
        match read_frame(&mut stream) {
            Frame::Mux {
                session: replied,
                frame,
            } => {
                assert_eq!(replied, session);
                match *frame {
                    Frame::ResponseBatch {
                        epoch, responses, ..
                    } => {
                        assert_eq!(epoch, 1);
                        assert_eq!(
                            responses, expected.responses,
                            "a recovered session answers byte-identically"
                        );
                    }
                    Frame::Overloaded { retry_after_ms } => {
                        panic!("queue already drained, nothing to shed ({retry_after_ms}ms hint)")
                    }
                    other => panic!("unexpected recovery reply: {other:?}"),
                }
            }
            other => panic!("unexpected unmuxed recovery reply: {other:?}"),
        }
    }

    drop(stream);
    service.shutdown();
}

/// Wraps `frame` for one logical session.
fn wrap(session: u32, frame: Frame) -> Frame {
    Frame::Mux {
        session,
        frame: Box::new(frame),
    }
}

#[test]
fn hostile_mux_input_gets_a_protocol_error_not_a_crash() {
    // A nested Mux on a live event-tier connection produces a clean
    // protocol error (and a closed connection) — the server stays up and
    // keeps serving fresh connections.
    let mut topology = cpu_fleet(1);
    topology.session_tier = SessionTier::Events;
    let service = build_service(&topology, 0).unwrap();

    let mut stream = TcpStream::connect(service.addr()).unwrap();
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: WIRE_VERSION,
        },
    );
    let Frame::HelloAck { .. } = read_frame(&mut stream) else {
        panic!("handshake failed");
    };
    // Hand-built nested Mux — the encoder refuses to produce this, so
    // splice the bytes together manually.
    let inner = wrap(2, Frame::InfoRequest).encode().unwrap();
    let mut body = vec![18u8]; // outer Mux tag
    body.extend_from_slice(&1u32.to_le_bytes());
    body.extend_from_slice(&inner[4..]); // inner tag + body, no prefix
    let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
    bytes.extend_from_slice(&body);
    stream.write_all(&bytes).unwrap();
    match read_frame(&mut stream) {
        Frame::Error { message } => assert!(
            message.contains("Mux"),
            "the error names the violation: {message}"
        ),
        other => panic!("expected a protocol error frame, got {other:?}"),
    }

    // The violation cost that connection only; the service still serves.
    let mut fresh = TcpTransport::connect(service.addr()).unwrap();
    assert_eq!(fresh.server_info().unwrap().num_records, RECORDS);
    drop(fresh);
    drop(stream);
    service.shutdown();
}

#[test]
fn client_side_overloaded_error_is_typed_and_retryable() {
    // The client-facing face of load shedding: a MuxSession surfaces the
    // refusal as `PirError::Overloaded` with the server's backoff hint,
    // and the same session succeeds on retry.
    let mut topology = cpu_fleet(1);
    topology.session_tier = SessionTier::Events;
    let service = build_service_with(
        &topology,
        0,
        ServiceConfig {
            session_tier: SessionTier::Events,
            admission_capacity: 1,
            ..ServiceConfig::default()
        },
    )
    .unwrap();

    let conn = MuxConnection::connect(service.addr()).unwrap();
    let mut client = PirClient::new(RECORDS, RECORD_BYTES, 47).unwrap();
    let (shares, _) = client.generate_batch(&[5, 505]).unwrap();
    let updates: Vec<(u64, Vec<u8>)> = (0..120_000u64)
        .map(|i| (i % RECORDS, vec![0x3C; RECORD_BYTES]))
        .collect();

    // One session holds the dispatcher with a bulk update while two more
    // hammer queries; with a single admission slot at least one query
    // observes the typed refusal.
    let saw_overload = std::thread::scope(|scope| {
        let updater = {
            let mut session = conn.session().unwrap();
            let updates = &updates;
            scope.spawn(move || session.apply_updates(updates).unwrap())
        };
        let queriers: Vec<_> = (0..2)
            .map(|_| {
                let mut session = conn.session().unwrap();
                let shares = &shares;
                scope.spawn(move || {
                    let mut hits = 0u32;
                    for _ in 0..200 {
                        match session.query_batch(shares) {
                            Ok(_) => {}
                            Err(PirError::Overloaded { retry_after_ms }) => {
                                assert!(retry_after_ms > 0);
                                hits += 1;
                            }
                            Err(other) => panic!("only typed shedding is acceptable: {other}"),
                        }
                    }
                    // Recovery on the very same logical session.
                    session.query_batch(shares).unwrap();
                    hits
                })
            })
            .collect();
        assert_eq!(updater.join().unwrap().epoch, 1);
        queriers.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
    });
    assert!(
        saw_overload > 0,
        "two query sessions against a 1-slot queue during a bulk update \
         must observe at least one typed Overloaded refusal"
    );

    drop(conn);
    service.shutdown();
}

#[test]
fn a_fully_remote_two_server_deployment_reconstructs_records() {
    // Two replicas with different shard layouts — distribution policy is
    // replica-local and invisible on the wire.
    let mut topology = FleetTopology::new(RECORDS, RECORD_BYTES, DB_SEED);
    let mut alpha = ReplicaSpec::tcp("alpha", "127.0.0.1:0");
    alpha.sharding = Some(ShardPolicy::Uniform(2));
    let mut beta = ReplicaSpec::tcp("beta", "127.0.0.1:0");
    beta.sharding = Some(ShardPolicy::Uniform(3));
    topology.replicas.push(alpha);
    topology.replicas.push(beta);
    let db = topology.build_database().unwrap();

    let service_1 = build_service(&topology, 0).unwrap();
    let service_2 = build_service(&topology, 1).unwrap();
    let client = PirClient::new(RECORDS, RECORD_BYTES, 9).unwrap();
    let mut pir = TwoServerPir::from_transports(
        client,
        Box::new(TcpTransport::connect(service_1.addr()).unwrap()),
        Box::new(TcpTransport::connect(service_2.addr()).unwrap()),
    )
    .unwrap();
    for index in [0u64, 42, 599] {
        assert_eq!(pir.query(index).unwrap(), db.record(index));
    }

    // An update that reaches both replicas keeps the deployment serving.
    pir.apply_updates(&[(42, vec![0x77; RECORD_BYTES])])
        .unwrap();
    assert_eq!(pir.query(42).unwrap(), vec![0x77; RECORD_BYTES]);

    // An update that reaches only one replica is detected on the next
    // query, which replays the lag from the healthy replica's journal and
    // answers from the converged version — never a silent mixed-epoch
    // reconstruction.
    pir.transport(0)
        .unwrap()
        .apply_updates(&[(0, vec![0x99; RECORD_BYTES])])
        .unwrap();
    assert_eq!(pir.query(0).unwrap(), vec![0x99; RECORD_BYTES]);
    assert_eq!(pir.server_info(0).unwrap().epoch, 2);
    assert_eq!(pir.server_info(1).unwrap().epoch, 2);

    drop(pir);
    service_1.shutdown();
    service_2.shutdown();
}

#[test]
fn a_local_topology_builds_a_working_two_server_deployment() {
    // The all-in-process construction path: `from_topology` spins both
    // replicas up behind LocalTransports — no sockets, same scheme code.
    let mut topology = FleetTopology::new(RECORDS, RECORD_BYTES, DB_SEED);
    topology.sharding = ShardPolicy::Uniform(2);
    topology.replicas.push(ReplicaSpec::local("left"));
    topology.replicas.push(ReplicaSpec::local("right"));
    let db = topology.build_database().unwrap();

    let mut pir = TwoServerPir::from_topology(&topology).unwrap();
    for index in [0u64, 321, 599] {
        assert_eq!(pir.query(index).unwrap(), db.record(index));
    }
    pir.apply_updates(&[(7, vec![0x5A; RECORD_BYTES])]).unwrap();
    assert_eq!(pir.query(7).unwrap(), vec![0x5A; RECORD_BYTES]);
}

#[test]
fn pim_backends_serve_over_the_wire_identically_too() {
    // The transport layer is backend-agnostic: a (simulated) PIM engine
    // behind a socket answers byte-identically to the same engine driven
    // directly — both built from the same topology replica.
    let mut topology = FleetTopology::new(240, 16, 77);
    topology.sharding = ShardPolicy::Uniform(2);
    let mut replica = ReplicaSpec::tcp("pim", "127.0.0.1:0");
    replica.backend = BackendSpec::Pim {
        dpus: 4,
        clusters: 2,
    };
    topology.replicas.push(replica);

    let service = build_service(&topology, 0).unwrap();
    let mut remote = TcpTransport::connect(service.addr()).unwrap();
    let mut local = LocalTransport::new(topology.build_engine(0).unwrap());

    let mut client = PirClient::new(240, 16, 11).unwrap();
    let (shares, _) = client.generate_batch(&[0, 100, 239, 100]).unwrap();
    let over_wire = remote.query_batch(&shares).unwrap();
    let in_process = local.query_batch(&shares).unwrap();
    assert_eq!(over_wire.responses, in_process.responses);
    // The PIM phase accounting crosses the wire intact.
    assert!(over_wire.phase_totals.dpxor.simulated_seconds.unwrap() > 0.0);
    drop(remote);
    service.shutdown();
}

#[test]
fn n_server_naive_scheme_runs_over_a_remote_transport() {
    let topology = cpu_fleet(2);
    let db = topology.build_database().unwrap();
    let service = build_service(&topology, 0).unwrap();
    let transport = TcpTransport::connect(service.addr()).unwrap();
    let mut remote_pir = NServerNaivePir::with_transport(Box::new(transport), 3, 13).unwrap();
    let mut local_pir = NServerNaivePir::sharded(Arc::clone(&db), 3, 2, 13).unwrap();
    for index in [0u64, 321, 599] {
        // Same seed -> same shares -> identical records, across transports.
        assert_eq!(remote_pir.query(index).unwrap(), db.record(index));
        assert_eq!(local_pir.query(index).unwrap(), db.record(index));
    }
    assert_eq!(
        remote_pir.upload_bytes_per_query(),
        local_pir.upload_bytes_per_query()
    );
    drop(remote_pir);
    service.shutdown();
}

#[test]
fn auto_rebalancing_services_answer_byte_identically_to_a_static_oracle() {
    // `rebalance = auto` closes the measured-skew loop inside the
    // dispatcher, between query waves. Whether (and when) a migration
    // fires depends on measured wall times, so this pins the invariant
    // that must hold either way: every response over the wire stays
    // byte-identical to a static in-process oracle that never rebalances
    // — shard layouts, moving or not, are invisible to clients.
    let mut topology = cpu_fleet(3);
    topology.rebalance = RebalanceMode::Auto;
    let service = build_service(&topology, 0).unwrap();
    let mut remote = TcpTransport::connect(service.addr()).unwrap();

    let static_topology = cpu_fleet(3);
    let mut oracle = LocalTransport::new(static_topology.build_engine(0).unwrap());

    let mut client = PirClient::new(RECORDS, RECORD_BYTES, 23).unwrap();
    let indices = [0u64, 1, 199, 200, 399, 400, 599, 77];
    for round in 0..4 {
        let (shares, _) = client.generate_batch(&indices).unwrap();
        let over_wire = remote.query_batch(&shares).unwrap();
        let in_process = oracle.query_batch(&shares).unwrap();
        assert_eq!(
            over_wire.responses, in_process.responses,
            "round {round}: responses must not depend on rebalancing activity"
        );
    }

    // Updates keep flowing through a (possibly rebalanced) engine: the
    // journal absorbs migrations as ordinary epoch steps, so the batch
    // applies and the new bytes are served.
    let service_epoch = remote.epoch_info().unwrap().current_epoch;
    let update = vec![(42u64, vec![0xE1; RECORD_BYTES])];
    let ack = remote.apply_updates(&update).unwrap();
    assert_eq!(ack.epoch, service_epoch + 1);
    oracle.apply_updates(&update).unwrap();
    let (shares, _) = client.generate_batch(&indices).unwrap();
    let over_wire = remote.query_batch(&shares).unwrap();
    let in_process = oracle.query_batch(&shares).unwrap();
    assert_eq!(over_wire.responses, in_process.responses);

    drop(remote);
    service.shutdown();
}
