//! Acceptance test for the service layer: a real-socket deployment
//! (`PirService` sessions over `TcpTransport`) must answer **byte
//! identically** to the in-process `LocalTransport` path over the same
//! topology replica — before and after bulk updates.
//!
//! Every server here is built from a [`FleetTopology`] with
//! [`build_service`] — the same construction path as
//! `impir-server --config` — and the in-process comparison engines come
//! from [`FleetTopology::build_engine`], so the equivalence being pinned
//! is between *transports*, never between two hand-wired engines that
//! could drift apart. Ephemeral ports (`:0`) keep parallel test runs from
//! colliding; clients dial whatever the services actually bound.

use std::sync::Arc;

use im_pir::core::multi_server::NServerNaivePir;
use im_pir::core::scheme::TwoServerPir;
use im_pir::core::topology::{BackendSpec, FleetTopology, RebalanceMode, ReplicaSpec, ShardPolicy};
use im_pir::core::transport::{LocalTransport, PirTransport, TcpTransport};
use im_pir::core::PirClient;
use impir_server::build_service;

const RECORDS: u64 = 600;
const RECORD_BYTES: usize = 24;
const DB_SEED: u64 = 1717;

/// A single-replica CPU fleet with `shards` uniform shards.
fn cpu_fleet(shards: usize) -> FleetTopology {
    let mut topology = FleetTopology::new(RECORDS, RECORD_BYTES, DB_SEED);
    topology.sharding = ShardPolicy::Uniform(shards);
    topology
        .replicas
        .push(ReplicaSpec::tcp("alpha", "127.0.0.1:0"));
    topology
}

#[test]
fn tcp_and_local_transports_answer_byte_identically_across_updates() {
    let indices = [0u64, 1, 299, 300, 599, 123, 123];
    let updates: Vec<(u64, Vec<u8>)> = vec![
        (0, vec![0x11; RECORD_BYTES]),
        (299, vec![0x22; RECORD_BYTES]),
        (300, vec![0x33; RECORD_BYTES]),
        (599, vec![0x44; RECORD_BYTES]),
    ];

    for shards in [1usize, 3] {
        // The same topology replica behind a socket and behind a direct
        // call.
        let topology = cpu_fleet(shards);
        let service = build_service(&topology, 0).unwrap();
        let mut remote = TcpTransport::connect(service.addr()).unwrap();
        let mut local = LocalTransport::new(topology.build_engine(0).unwrap());

        // Both transports describe the same server.
        let remote_info = remote.server_info().unwrap();
        let local_info = local.server_info().unwrap();
        assert_eq!(remote_info, local_info, "shards={shards}");

        // Identical client seeds -> identical shares for both paths.
        let mut client = PirClient::new(RECORDS, RECORD_BYTES, 5).unwrap();
        let (shares, _) = client.generate_batch(&indices).unwrap();

        let over_wire = remote.query_batch(&shares).unwrap();
        let in_process = local.query_batch(&shares).unwrap();
        assert_eq!(
            over_wire.responses, in_process.responses,
            "pre-update responses must be byte-identical (shards={shards})"
        );
        assert_eq!(over_wire.epoch, in_process.epoch);
        // Wire-cost accounting is transport-independent.
        assert_eq!(over_wire.upload_bytes, in_process.upload_bytes);
        assert_eq!(over_wire.download_bytes, in_process.download_bytes);

        // Apply the same update batch through both transports.
        let remote_ack = remote.apply_updates(&updates).unwrap();
        let local_ack = local.apply_updates(&updates).unwrap();
        assert_eq!(remote_ack.records_updated, local_ack.records_updated);
        assert_eq!(remote_ack.epoch, 1);
        assert_eq!(local_ack.epoch, 1);

        let over_wire = remote.query_batch(&shares).unwrap();
        let in_process = local.query_batch(&shares).unwrap();
        assert_eq!(
            over_wire.responses, in_process.responses,
            "post-update responses must be byte-identical (shards={shards})"
        );
        assert_eq!(over_wire.epoch, 1);

        // Selector scans (the n-server path) agree too, and carry the
        // post-update epoch so mid-query interleavings are detectable.
        let selector: impir_dpf::SelectorVector = (0..RECORDS).map(|i| i % 7 == 2).collect();
        let wire_scan = remote.scan_selector(&selector).unwrap();
        let local_scan = local.scan_selector(&selector).unwrap();
        assert_eq!(wire_scan.payload, local_scan.payload, "shards={shards}");
        assert_eq!(wire_scan.epoch, 1);
        assert_eq!(local_scan.epoch, 1);

        service.shutdown();
    }
}

#[test]
fn a_fully_remote_two_server_deployment_reconstructs_records() {
    // Two replicas with different shard layouts — distribution policy is
    // replica-local and invisible on the wire.
    let mut topology = FleetTopology::new(RECORDS, RECORD_BYTES, DB_SEED);
    let mut alpha = ReplicaSpec::tcp("alpha", "127.0.0.1:0");
    alpha.sharding = Some(ShardPolicy::Uniform(2));
    let mut beta = ReplicaSpec::tcp("beta", "127.0.0.1:0");
    beta.sharding = Some(ShardPolicy::Uniform(3));
    topology.replicas.push(alpha);
    topology.replicas.push(beta);
    let db = topology.build_database().unwrap();

    let service_1 = build_service(&topology, 0).unwrap();
    let service_2 = build_service(&topology, 1).unwrap();
    let client = PirClient::new(RECORDS, RECORD_BYTES, 9).unwrap();
    let mut pir = TwoServerPir::from_transports(
        client,
        Box::new(TcpTransport::connect(service_1.addr()).unwrap()),
        Box::new(TcpTransport::connect(service_2.addr()).unwrap()),
    )
    .unwrap();
    for index in [0u64, 42, 599] {
        assert_eq!(pir.query(index).unwrap(), db.record(index));
    }

    // An update that reaches both replicas keeps the deployment serving.
    pir.apply_updates(&[(42, vec![0x77; RECORD_BYTES])])
        .unwrap();
    assert_eq!(pir.query(42).unwrap(), vec![0x77; RECORD_BYTES]);

    // An update that reaches only one replica is detected on the next
    // query, which replays the lag from the healthy replica's journal and
    // answers from the converged version — never a silent mixed-epoch
    // reconstruction.
    pir.transport(0)
        .unwrap()
        .apply_updates(&[(0, vec![0x99; RECORD_BYTES])])
        .unwrap();
    assert_eq!(pir.query(0).unwrap(), vec![0x99; RECORD_BYTES]);
    assert_eq!(pir.server_info(0).unwrap().epoch, 2);
    assert_eq!(pir.server_info(1).unwrap().epoch, 2);

    drop(pir);
    service_1.shutdown();
    service_2.shutdown();
}

#[test]
fn a_local_topology_builds_a_working_two_server_deployment() {
    // The all-in-process construction path: `from_topology` spins both
    // replicas up behind LocalTransports — no sockets, same scheme code.
    let mut topology = FleetTopology::new(RECORDS, RECORD_BYTES, DB_SEED);
    topology.sharding = ShardPolicy::Uniform(2);
    topology.replicas.push(ReplicaSpec::local("left"));
    topology.replicas.push(ReplicaSpec::local("right"));
    let db = topology.build_database().unwrap();

    let mut pir = TwoServerPir::from_topology(&topology).unwrap();
    for index in [0u64, 321, 599] {
        assert_eq!(pir.query(index).unwrap(), db.record(index));
    }
    pir.apply_updates(&[(7, vec![0x5A; RECORD_BYTES])]).unwrap();
    assert_eq!(pir.query(7).unwrap(), vec![0x5A; RECORD_BYTES]);
}

#[test]
fn pim_backends_serve_over_the_wire_identically_too() {
    // The transport layer is backend-agnostic: a (simulated) PIM engine
    // behind a socket answers byte-identically to the same engine driven
    // directly — both built from the same topology replica.
    let mut topology = FleetTopology::new(240, 16, 77);
    topology.sharding = ShardPolicy::Uniform(2);
    let mut replica = ReplicaSpec::tcp("pim", "127.0.0.1:0");
    replica.backend = BackendSpec::Pim {
        dpus: 4,
        clusters: 2,
    };
    topology.replicas.push(replica);

    let service = build_service(&topology, 0).unwrap();
    let mut remote = TcpTransport::connect(service.addr()).unwrap();
    let mut local = LocalTransport::new(topology.build_engine(0).unwrap());

    let mut client = PirClient::new(240, 16, 11).unwrap();
    let (shares, _) = client.generate_batch(&[0, 100, 239, 100]).unwrap();
    let over_wire = remote.query_batch(&shares).unwrap();
    let in_process = local.query_batch(&shares).unwrap();
    assert_eq!(over_wire.responses, in_process.responses);
    // The PIM phase accounting crosses the wire intact.
    assert!(over_wire.phase_totals.dpxor.simulated_seconds.unwrap() > 0.0);
    drop(remote);
    service.shutdown();
}

#[test]
fn n_server_naive_scheme_runs_over_a_remote_transport() {
    let topology = cpu_fleet(2);
    let db = topology.build_database().unwrap();
    let service = build_service(&topology, 0).unwrap();
    let transport = TcpTransport::connect(service.addr()).unwrap();
    let mut remote_pir = NServerNaivePir::with_transport(Box::new(transport), 3, 13).unwrap();
    let mut local_pir = NServerNaivePir::sharded(Arc::clone(&db), 3, 2, 13).unwrap();
    for index in [0u64, 321, 599] {
        // Same seed -> same shares -> identical records, across transports.
        assert_eq!(remote_pir.query(index).unwrap(), db.record(index));
        assert_eq!(local_pir.query(index).unwrap(), db.record(index));
    }
    assert_eq!(
        remote_pir.upload_bytes_per_query(),
        local_pir.upload_bytes_per_query()
    );
    drop(remote_pir);
    service.shutdown();
}

#[test]
fn auto_rebalancing_services_answer_byte_identically_to_a_static_oracle() {
    // `rebalance = auto` closes the measured-skew loop inside the
    // dispatcher, between query waves. Whether (and when) a migration
    // fires depends on measured wall times, so this pins the invariant
    // that must hold either way: every response over the wire stays
    // byte-identical to a static in-process oracle that never rebalances
    // — shard layouts, moving or not, are invisible to clients.
    let mut topology = cpu_fleet(3);
    topology.rebalance = RebalanceMode::Auto;
    let service = build_service(&topology, 0).unwrap();
    let mut remote = TcpTransport::connect(service.addr()).unwrap();

    let static_topology = cpu_fleet(3);
    let mut oracle = LocalTransport::new(static_topology.build_engine(0).unwrap());

    let mut client = PirClient::new(RECORDS, RECORD_BYTES, 23).unwrap();
    let indices = [0u64, 1, 199, 200, 399, 400, 599, 77];
    for round in 0..4 {
        let (shares, _) = client.generate_batch(&indices).unwrap();
        let over_wire = remote.query_batch(&shares).unwrap();
        let in_process = oracle.query_batch(&shares).unwrap();
        assert_eq!(
            over_wire.responses, in_process.responses,
            "round {round}: responses must not depend on rebalancing activity"
        );
    }

    // Updates keep flowing through a (possibly rebalanced) engine: the
    // journal absorbs migrations as ordinary epoch steps, so the batch
    // applies and the new bytes are served.
    let service_epoch = remote.epoch_info().unwrap().current_epoch;
    let update = vec![(42u64, vec![0xE1; RECORD_BYTES])];
    let ack = remote.apply_updates(&update).unwrap();
    assert_eq!(ack.epoch, service_epoch + 1);
    oracle.apply_updates(&update).unwrap();
    let (shares, _) = client.generate_batch(&indices).unwrap();
    let over_wire = remote.query_batch(&shares).unwrap();
    let in_process = oracle.query_batch(&shares).unwrap();
    assert_eq!(over_wire.responses, in_process.responses);

    drop(remote);
    service.shutdown();
}
