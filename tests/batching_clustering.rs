//! Integration tests for batched query processing and DPU clustering
//! (paper §3.4 and §5.4) across the core and PIM crates.

use std::sync::Arc;

use im_pir::core::database::Database;
use im_pir::core::scheme::TwoServerPir;
use im_pir::core::server::pim::{ImPirConfig, ImPirServer};
use im_pir::core::server::PirServer;
use im_pir::core::PirClient;
use im_pir::pim::PimConfig;
use im_pir::workload::QueryDistribution;

fn config(dpus: usize, clusters: usize) -> ImPirConfig {
    ImPirConfig {
        pim: PimConfig::tiny_test(dpus, 8 << 20),
        clusters,
        eval_threads: 2,
    }
}

#[test]
fn large_batches_are_answered_correctly_across_cluster_counts() {
    let db = Arc::new(Database::random(1024, 32, 55).unwrap());
    for clusters in [1usize, 2, 4, 8] {
        let mut pir = TwoServerPir::with_pim_servers(db.clone(), config(8, clusters)).unwrap();
        let indices = QueryDistribution::Uniform.sample(40, db.num_records(), clusters as u64);
        let (records, outcome_1, outcome_2) = pir.query_batch(&indices).unwrap();
        for (record, index) in records.iter().zip(&indices) {
            assert_eq!(record, db.record(*index), "clusters={clusters}");
        }
        assert_eq!(outcome_1.responses.len(), indices.len());
        assert_eq!(outcome_2.responses.len(), indices.len());
        // The batch accumulated simulated PIM time in its dpXOR phase.
        assert!(outcome_1.phase_totals.dpxor.simulated_seconds.unwrap() > 0.0);
    }
}

#[test]
fn batch_and_sequential_processing_return_identical_responses() {
    let db = Arc::new(Database::random(600, 16, 3).unwrap());
    let mut batch_server = ImPirServer::new(db.clone(), config(6, 3)).unwrap();
    let mut sequential_server = ImPirServer::new(db.clone(), config(6, 3)).unwrap();
    let mut client = PirClient::new(600, 16, 9).unwrap();
    let indices = QueryDistribution::Uniform.sample(12, 600, 4);
    let (shares, _) = client.generate_batch(&indices).unwrap();

    let batch_outcome = batch_server.process_batch(&shares).unwrap();
    for (i, share) in shares.iter().enumerate() {
        let (response, _) = sequential_server.process_query(share).unwrap();
        assert_eq!(response.payload, batch_outcome.responses[i].payload);
    }
}

#[test]
fn more_clusters_reduce_simulated_dpxor_critical_path_per_wave() {
    // With the same total DPUs, splitting into clusters lets several
    // queries share one launch; the per-query simulated dpXOR time grows
    // (fewer DPUs per query) but the batch needs fewer waves. Check the
    // accounting is consistent: the simulated kernel seconds of the PIM
    // report equal the accumulated dpXOR phase.
    let db = Arc::new(Database::random(2048, 32, 2).unwrap());
    let mut server = ImPirServer::new(db.clone(), config(8, 4)).unwrap();
    let mut client = PirClient::new(2048, 32, 1).unwrap();
    let indices = QueryDistribution::Uniform.sample(8, 2048, 3);
    let (shares, _) = client.generate_batch(&indices).unwrap();
    server.reset_pim_report();
    let outcome = server.process_batch(&shares).unwrap();
    let report = server.pim_report();
    let accumulated = outcome.phase_totals.dpxor.simulated_seconds.unwrap();
    assert!((report.simulated_kernel_seconds - accumulated).abs() < 1e-9);
    // 8 queries over 4 clusters → 2 waves → 2 kernel launches.
    assert_eq!(report.launches, 2);
}

#[test]
fn hotspot_and_zipf_batches_are_served_correctly() {
    let db = Arc::new(Database::random(512, 32, 12).unwrap());
    let mut pir = TwoServerPir::with_pim_servers(db.clone(), config(4, 2)).unwrap();
    for distribution in [
        QueryDistribution::Zipf { exponent: 1.2 },
        QueryDistribution::Hotspot { hot_fraction: 0.8 },
    ] {
        let indices = distribution.sample(20, db.num_records(), 21);
        let (records, _, _) = pir.query_batch(&indices).unwrap();
        for (record, index) in records.iter().zip(&indices) {
            assert_eq!(record, db.record(*index));
        }
    }
}

#[test]
fn phase_breakdown_is_dominated_by_host_eval_in_hybrid_time() {
    // The reproduction's analogue of Take-away 4: once dpXOR runs on the
    // (modelled) PIM hardware, the host-side evaluation dominates the
    // hybrid per-query time.
    let db = Arc::new(Database::random(4096, 32, 4).unwrap());
    let mut server = ImPirServer::new(db.clone(), config(8, 1)).unwrap();
    let mut client = PirClient::new(4096, 32, 2).unwrap();
    let (share, _) = client.generate_query(1000).unwrap();
    let (_, phases) = server.process_query(&share).unwrap();
    let shares = phases.percentages();
    let eval_share = shares[0];
    let dpxor_share = shares[2];
    assert!(
        eval_share > dpxor_share,
        "eval {eval_share}% should exceed dpXOR {dpxor_share}% in hybrid time"
    );
}
