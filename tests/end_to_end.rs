//! Workspace-level integration tests: the full two-server protocol across
//! crates (client → DPF → servers → PIM simulator → reconstruction).

use std::sync::Arc;

use im_pir::core::database::Database;
use im_pir::core::scheme::TwoServerPir;
use im_pir::core::server::cpu::CpuServerConfig;
use im_pir::core::server::pim::ImPirConfig;
use im_pir::core::{PirClient, PirError};
use im_pir::dpf::naive::generate_shares;
use im_pir::dpf::{DpfKey, SelectorVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pim_scheme_retrieves_every_record_of_a_small_database() {
    let db = Arc::new(Database::random(64, 32, 1).unwrap());
    let mut pir = TwoServerPir::with_pim_servers(db.clone(), ImPirConfig::tiny_test(4)).unwrap();
    for index in 0..64 {
        assert_eq!(pir.query(index).unwrap(), db.record(index), "index {index}");
    }
}

#[test]
fn cpu_and_pim_schemes_agree_on_random_indices() {
    let db = Arc::new(Database::random(999, 24, 5).unwrap());
    let mut pim = TwoServerPir::with_pim_servers(db.clone(), ImPirConfig::tiny_test(8)).unwrap();
    let mut cpu = TwoServerPir::with_cpu_servers(db.clone(), CpuServerConfig::baseline()).unwrap();
    for index in [0u64, 1, 511, 512, 998] {
        let from_pim = pim.query(index).unwrap();
        let from_cpu = cpu.query(index).unwrap();
        assert_eq!(from_pim, from_cpu);
        assert_eq!(from_pim, db.record(index));
    }
}

#[test]
fn dpf_query_matches_the_naive_xor_share_scheme() {
    // The DPF-based query must select exactly the same records as the
    // pedagogical naive scheme from Figure 2 of the paper.
    let num_records = 300u64;
    let mut rng = StdRng::seed_from_u64(7);
    let mut client = PirClient::new(num_records, 8, 1).unwrap();
    let index = 123u64;

    let (share_1, share_2) = client.generate_query(index).unwrap();
    let mut dpf_selector: SelectorVector =
        im_pir::dpf::eval::eval_range(&share_1.key, 0, num_records).unwrap();
    dpf_selector.xor_assign(&im_pir::dpf::eval::eval_range(&share_2.key, 0, num_records).unwrap());

    let naive = generate_shares(num_records, index, &mut rng).unwrap();
    let naive_selector = naive.reconstruct();

    assert_eq!(dpf_selector.count_ones(), 1);
    assert_eq!(naive_selector.count_ones(), 1);
    assert!(dpf_selector.get(index as usize));
    assert!(naive_selector.get(index as usize));
}

#[test]
fn query_shares_survive_serialization_between_client_and_server() {
    let db = Arc::new(Database::random(500, 32, 9).unwrap());
    let mut client = PirClient::new(500, 32, 3).unwrap();
    let (share_1, share_2) = client.generate_query(321).unwrap();

    // Keys cross the network as bytes; a corrupted/truncated key must be
    // rejected rather than silently producing a wrong answer.
    let wire_1 = share_1.key.to_bytes();
    let restored = DpfKey::from_bytes(&wire_1).unwrap();
    assert_eq!(restored, share_1.key);
    assert!(DpfKey::from_bytes(&wire_1[..wire_1.len() - 3]).is_err());

    // The restored key answers correctly end to end.
    let mut server_1 =
        im_pir::core::server::cpu::CpuPirServer::new(db.clone(), CpuServerConfig::baseline())
            .unwrap();
    let mut server_2 =
        im_pir::core::server::cpu::CpuPirServer::new(db.clone(), CpuServerConfig::baseline())
            .unwrap();
    use im_pir::core::server::PirServer;
    let restored_share = im_pir::core::QueryShare::new(share_1.query_id, restored);
    let (r1, _) = server_1.process_query(&restored_share).unwrap();
    let (r2, _) = server_2.process_query(&share_2).unwrap();
    assert_eq!(client.reconstruct(&r1, &r2).unwrap(), db.record(321));
}

#[test]
fn record_sizes_other_than_32_bytes_work_end_to_end() {
    for record_size in [1usize, 8, 17, 64, 256] {
        let db = Arc::new(Database::random(120, record_size, record_size as u64).unwrap());
        let mut pir =
            TwoServerPir::with_pim_servers(db.clone(), ImPirConfig::tiny_test(4)).unwrap();
        let index = (record_size as u64 * 7) % 120;
        assert_eq!(
            pir.query(index).unwrap(),
            db.record(index),
            "record_size {record_size}"
        );
    }
}

#[test]
fn single_record_database_is_supported() {
    let db = Arc::new(Database::random(1, 32, 0).unwrap());
    let mut pir = TwoServerPir::with_pim_servers(db.clone(), ImPirConfig::tiny_test(2)).unwrap();
    assert_eq!(pir.query(0).unwrap(), db.record(0));
    assert!(matches!(
        pir.query(1),
        Err(PirError::IndexOutOfRange { .. })
    ));
}

#[test]
fn a_single_share_does_not_reveal_the_record() {
    // Collusion sanity check: one server's subresult alone is (with
    // overwhelming probability) not the requested record — both subresults
    // are needed.
    let db = Arc::new(Database::random(256, 32, 2).unwrap());
    let mut client = PirClient::new(256, 32, 11).unwrap();
    let (share_1, _share_2) = client.generate_query(99).unwrap();
    let mut server_1 =
        im_pir::core::server::cpu::CpuPirServer::new(db.clone(), CpuServerConfig::baseline())
            .unwrap();
    use im_pir::core::server::PirServer;
    let (r1, _) = server_1.process_query(&share_1).unwrap();
    assert_ne!(r1.payload, db.record(99));
}
