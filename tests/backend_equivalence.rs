//! Equivalence of the three evaluated systems: CPU-PIR, the GPU-PIR
//! comparator and IM-PIR must produce bit-identical subresults for the same
//! query share, across databases, record sizes and evaluation strategies.

use std::sync::Arc;

use im_pir::baselines::{CpuPirBaseline, GpuPirBaseline, ImPirSystem, SystemUnderTest};
use im_pir::core::database::Database;
use im_pir::core::engine::{EngineConfig, QueryEngine};
use im_pir::core::server::cpu::{CpuPirServer, CpuServerConfig};
use im_pir::core::server::pim::{ImPirConfig, ImPirServer};
use im_pir::core::server::streaming::{StreamingConfig, StreamingImPirServer};
use im_pir::core::shard::{ShardPlan, ShardedDatabase};
use im_pir::core::PirClient;
use im_pir::dpf::EvalStrategy;
use im_pir::pim::PimConfig;
use proptest::prelude::*;

fn build_systems(db: &Arc<Database>, dpus: usize) -> (CpuPirBaseline, GpuPirBaseline, ImPirSystem) {
    let cpu = CpuPirBaseline::new(db.clone()).unwrap();
    let gpu = GpuPirBaseline::new(db.clone()).unwrap();
    let config = ImPirConfig {
        pim: PimConfig::tiny_test(dpus, 8 << 20),
        clusters: 1,
        eval_threads: 2,
    };
    let pim = ImPirSystem::new(db.clone(), config).unwrap();
    (cpu, gpu, pim)
}

#[test]
fn all_backends_return_identical_subresults() {
    let db = Arc::new(Database::random(777, 32, 31).unwrap());
    let (mut cpu, mut gpu, mut pim) = build_systems(&db, 5);
    let mut client = PirClient::new(777, 32, 1).unwrap();
    let indices: Vec<u64> = vec![0, 5, 399, 776];
    let (shares, _) = client.generate_batch(&indices).unwrap();

    let cpu_out = cpu.process_batch(&shares).unwrap();
    let gpu_out = gpu.process_batch(&shares).unwrap();
    let pim_out = pim.process_batch(&shares).unwrap();
    for i in 0..indices.len() {
        assert_eq!(cpu_out.responses[i].payload, gpu_out.responses[i].payload);
        assert_eq!(cpu_out.responses[i].payload, pim_out.responses[i].payload);
        assert_eq!(cpu_out.responses[i].query_id, pim_out.responses[i].query_id);
    }
}

#[test]
fn all_eval_strategies_lead_to_the_same_server_answer() {
    let db = Arc::new(Database::random(513, 16, 8).unwrap());
    let mut client = PirClient::new(513, 16, 2).unwrap();
    let (share, _) = client.generate_query(400).unwrap();

    use im_pir::core::server::cpu::{CpuPirServer, CpuServerConfig};
    use im_pir::core::server::PirServer;
    let mut reference: Option<Vec<u8>> = None;
    for strategy in [
        EvalStrategy::BranchParallel,
        EvalStrategy::LevelByLevel,
        EvalStrategy::MemoryBounded { chunk_bits: 5 },
        EvalStrategy::SubtreeParallel { threads: 4 },
    ] {
        let mut server = CpuPirServer::new(
            db.clone(),
            CpuServerConfig {
                eval_strategy: strategy,
                scan_threads: 2,
            },
        )
        .unwrap();
        let (response, _) = server.process_query(&share).unwrap();
        match &reference {
            None => reference = Some(response.payload),
            Some(expected) => assert_eq!(&response.payload, expected, "{}", strategy.name()),
        }
    }
}

/// CPU, PIM and streaming backends must return byte-identical records
/// through the unified `QueryEngine` on a sharded database, across several
/// shard layouts, including a batch whose size is a multiple of neither the
/// shard count nor the PIM backend's cluster count.
#[test]
fn engine_backends_agree_on_sharded_databases() {
    let num_records: u64 = 421;
    let record_size = 24;
    let db = Arc::new(Database::random(num_records, record_size, 19).unwrap());
    let mut client = PirClient::new(num_records, record_size, 9).unwrap();
    // 7 queries: not a multiple of 2 or 3 (shard counts), nor of the PIM
    // backend's 2 clusters.
    let indices: Vec<u64> = vec![0, 420, 99, 210, 99, 7, 333];
    let (shares_1, shares_2) = client.generate_batch(&indices).unwrap();

    let plans = [
        ShardPlan::uniform(num_records, 2).unwrap(),
        ShardPlan::uniform(num_records, 3).unwrap(),
        // A deliberately skewed layout: a big head shard and two small
        // tails.
        ShardPlan::from_ranges(vec![0..300, 300..400, 400..num_records]).unwrap(),
    ];
    for plan in plans {
        let shard_count = plan.shard_count();
        let sharded = ShardedDatabase::new(db.clone(), plan).unwrap();

        let mut cpu_engine =
            QueryEngine::sharded(&sharded, EngineConfig::default(), |shard_db, _| {
                CpuPirServer::new(shard_db, CpuServerConfig::baseline())
            })
            .unwrap();
        let mut pim_engine =
            QueryEngine::sharded(&sharded, EngineConfig::default(), |shard_db, _| {
                ImPirServer::new(shard_db, ImPirConfig::tiny_test(4).with_clusters(2))
            })
            .unwrap();
        let mut streaming_engine =
            QueryEngine::sharded(&sharded, EngineConfig::default(), |shard_db, _| {
                // A tight residency budget forces several segments per
                // shard scan.
                let config = StreamingConfig::new(ImPirConfig::tiny_test(4), 512)?;
                StreamingImPirServer::new(shard_db, config)
            })
            .unwrap();

        let cpu_out = cpu_engine.execute_batch(&shares_1).unwrap();
        let pim_out = pim_engine.execute_batch(&shares_1).unwrap();
        let streaming_out = streaming_engine.execute_batch(&shares_1).unwrap();
        assert_eq!(cpu_out.responses.len(), indices.len());
        for i in 0..indices.len() {
            assert_eq!(
                cpu_out.responses[i].payload, pim_out.responses[i].payload,
                "shards={shard_count} query {i}: CPU vs PIM"
            );
            assert_eq!(
                cpu_out.responses[i].payload, streaming_out.responses[i].payload,
                "shards={shard_count} query {i}: CPU vs streaming"
            );
        }

        // End to end: reconstruct against a second (unsharded) CPU server
        // to prove the engine responses are real PIR subresults.
        let mut second = CpuPirBaseline::new(db.clone()).unwrap();
        let second_out = second.process_batch(&shares_2).unwrap();
        for (i, &index) in indices.iter().enumerate() {
            let record = client
                .reconstruct(&pim_out.responses[i], &second_out.responses[i])
                .unwrap();
            assert_eq!(
                record,
                db.record(index),
                "shards={shard_count} index {index}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_backends_agree_and_reconstruct(
        num_records in 3u64..500,
        record_words in 1usize..4,
        dpus in 1usize..6,
        seed in any::<u64>(),
    ) {
        let record_size = record_words * 8;
        let db = Arc::new(Database::random(num_records, record_size, seed).unwrap());
        let (mut cpu, mut gpu, mut pim) = build_systems(&db, dpus);
        let mut client = PirClient::new(num_records, record_size, seed ^ 7).unwrap();
        let index = seed % num_records;
        let (share_1, share_2) = client.generate_query(index).unwrap();

        let shares_1 = vec![share_1];
        let cpu_out = cpu.process_batch(&shares_1).unwrap();
        let gpu_out = gpu.process_batch(&shares_1).unwrap();
        let pim_out = pim.process_batch(&shares_1).unwrap();
        prop_assert_eq!(&cpu_out.responses[0].payload, &gpu_out.responses[0].payload);
        prop_assert_eq!(&cpu_out.responses[0].payload, &pim_out.responses[0].payload);

        // Reconstruct against a CPU second server.
        let mut second = CpuPirBaseline::new(db.clone()).unwrap();
        let second_out = second.process_batch(&[share_2]).unwrap();
        let record = client
            .reconstruct(&pim_out.responses[0], &second_out.responses[0])
            .unwrap();
        prop_assert_eq!(record, db.record(index).to_vec());
    }
}
