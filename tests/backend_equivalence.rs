//! Equivalence of the three evaluated systems: CPU-PIR, the GPU-PIR
//! comparator and IM-PIR must produce bit-identical subresults for the same
//! query share, across databases, record sizes and evaluation strategies.

use std::sync::Arc;

use im_pir::baselines::{CpuPirBaseline, GpuPirBaseline, ImPirSystem, SystemUnderTest};
use im_pir::core::database::Database;
use im_pir::core::engine::{EngineConfig, QueryEngine};
use im_pir::core::server::cpu::{CpuPirServer, CpuServerConfig};
use im_pir::core::server::pim::{ImPirConfig, ImPirServer};
use im_pir::core::server::streaming::{StreamingConfig, StreamingImPirServer};
use im_pir::core::shard::{ShardPlan, ShardedDatabase};
use im_pir::core::PirClient;
use im_pir::dpf::EvalStrategy;
use im_pir::pim::PimConfig;
use proptest::prelude::*;

fn build_systems(db: &Arc<Database>, dpus: usize) -> (CpuPirBaseline, GpuPirBaseline, ImPirSystem) {
    let cpu = CpuPirBaseline::new(db.clone()).unwrap();
    let gpu = GpuPirBaseline::new(db.clone()).unwrap();
    let config = ImPirConfig {
        pim: PimConfig::tiny_test(dpus, 8 << 20),
        clusters: 1,
        eval_threads: 2,
    };
    let pim = ImPirSystem::new(db.clone(), config).unwrap();
    (cpu, gpu, pim)
}

#[test]
fn all_backends_return_identical_subresults() {
    let db = Arc::new(Database::random(777, 32, 31).unwrap());
    let (mut cpu, mut gpu, mut pim) = build_systems(&db, 5);
    let mut client = PirClient::new(777, 32, 1).unwrap();
    let indices: Vec<u64> = vec![0, 5, 399, 776];
    let (shares, _) = client.generate_batch(&indices).unwrap();

    let cpu_out = cpu.process_batch(&shares).unwrap();
    let gpu_out = gpu.process_batch(&shares).unwrap();
    let pim_out = pim.process_batch(&shares).unwrap();
    for i in 0..indices.len() {
        assert_eq!(cpu_out.responses[i].payload, gpu_out.responses[i].payload);
        assert_eq!(cpu_out.responses[i].payload, pim_out.responses[i].payload);
        assert_eq!(cpu_out.responses[i].query_id, pim_out.responses[i].query_id);
    }
}

#[test]
fn all_eval_strategies_lead_to_the_same_server_answer() {
    let db = Arc::new(Database::random(513, 16, 8).unwrap());
    let mut client = PirClient::new(513, 16, 2).unwrap();
    let (share, _) = client.generate_query(400).unwrap();

    use im_pir::core::server::cpu::{CpuPirServer, CpuServerConfig};
    use im_pir::core::server::PirServer;
    let mut reference: Option<Vec<u8>> = None;
    for strategy in [
        EvalStrategy::BranchParallel,
        EvalStrategy::LevelByLevel,
        EvalStrategy::MemoryBounded { chunk_bits: 5 },
        EvalStrategy::SubtreeParallel { threads: 4 },
    ] {
        let mut server = CpuPirServer::new(
            db.clone(),
            CpuServerConfig {
                eval_strategy: strategy,
                scan_threads: 2,
                scan_kernel: impir_core::dpxor::KernelChoice::Unrolled,
            },
        )
        .unwrap();
        let (response, _) = server.process_query(&share).unwrap();
        match &reference {
            None => reference = Some(response.payload),
            Some(expected) => assert_eq!(&response.payload, expected, "{}", strategy.name()),
        }
    }
}

/// CPU, PIM and streaming backends must return byte-identical records
/// through the unified `QueryEngine` on a sharded database, across several
/// shard layouts, including a batch whose size is a multiple of neither the
/// shard count nor the PIM backend's cluster count.
#[test]
fn engine_backends_agree_on_sharded_databases() {
    let num_records: u64 = 421;
    let record_size = 24;
    let db = Arc::new(Database::random(num_records, record_size, 19).unwrap());
    let mut client = PirClient::new(num_records, record_size, 9).unwrap();
    // 7 queries: not a multiple of 2 or 3 (shard counts), nor of the PIM
    // backend's 2 clusters.
    let indices: Vec<u64> = vec![0, 420, 99, 210, 99, 7, 333];
    let (shares_1, shares_2) = client.generate_batch(&indices).unwrap();

    let plans = [
        ShardPlan::uniform(num_records, 2).unwrap(),
        ShardPlan::uniform(num_records, 3).unwrap(),
        // A deliberately skewed layout: a big head shard and two small
        // tails.
        ShardPlan::from_ranges(vec![0..300, 300..400, 400..num_records]).unwrap(),
    ];
    for plan in plans {
        let shard_count = plan.shard_count();
        let sharded = ShardedDatabase::new(db.clone(), plan).unwrap();

        let mut cpu_engine =
            QueryEngine::sharded(&sharded, EngineConfig::default(), |shard_db, _| {
                CpuPirServer::new(shard_db, CpuServerConfig::baseline())
            })
            .unwrap();
        let mut pim_engine =
            QueryEngine::sharded(&sharded, EngineConfig::default(), |shard_db, _| {
                ImPirServer::new(shard_db, ImPirConfig::tiny_test(4).with_clusters(2))
            })
            .unwrap();
        let mut streaming_engine =
            QueryEngine::sharded(&sharded, EngineConfig::default(), |shard_db, _| {
                // A tight residency budget forces several segments per
                // shard scan.
                let config = StreamingConfig::new(ImPirConfig::tiny_test(4), 512)?;
                StreamingImPirServer::new(shard_db, config)
            })
            .unwrap();

        let cpu_out = cpu_engine.execute_batch(&shares_1).unwrap();
        let pim_out = pim_engine.execute_batch(&shares_1).unwrap();
        let streaming_out = streaming_engine.execute_batch(&shares_1).unwrap();
        assert_eq!(cpu_out.responses.len(), indices.len());
        for i in 0..indices.len() {
            assert_eq!(
                cpu_out.responses[i].payload, pim_out.responses[i].payload,
                "shards={shard_count} query {i}: CPU vs PIM"
            );
            assert_eq!(
                cpu_out.responses[i].payload, streaming_out.responses[i].payload,
                "shards={shard_count} query {i}: CPU vs streaming"
            );
        }

        // End to end: reconstruct against a second (unsharded) CPU server
        // to prove the engine responses are real PIR subresults.
        let mut second = CpuPirBaseline::new(db.clone()).unwrap();
        let second_out = second.process_batch(&shares_2).unwrap();
        for (i, &index) in indices.iter().enumerate() {
            let record = client
                .reconstruct(&pim_out.responses[i], &second_out.responses[i])
                .unwrap();
            assert_eq!(
                record,
                db.record(index),
                "shards={shard_count} index {index}"
            );
        }
    }
}

/// The engine-level update path, exercised per backend kind: after
/// `QueryEngine::apply_updates` a sharded engine must answer byte-identically
/// to a fresh engine constructed over the already-updated database, on
/// several shard layouts — and a batch containing one invalid entry must
/// leave every shard's responses unchanged (all-or-nothing).
fn assert_updates_match_fresh_engines<S, F>(label: &str, factory: F)
where
    S: im_pir::core::UpdatableBackend + Send + Sync,
    F: Fn(Arc<Database>, usize) -> Result<S, im_pir::core::PirError>,
{
    let num_records: u64 = 421;
    let record_size = 24;
    let db = Arc::new(Database::random(num_records, record_size, 19).unwrap());
    // A run of adjacent records, a pair straddling the skewed plan's
    // 300-boundary, and the last record.
    let updates: Vec<(u64, Vec<u8>)> = [0u64, 1, 2, 3, 150, 299, 300, 420]
        .iter()
        .enumerate()
        .map(|(i, &index)| (index, vec![0xA0 | i as u8; record_size]))
        .collect();
    let mut updated = (*db).clone();
    for (index, bytes) in &updates {
        updated.set_record(*index, bytes).unwrap();
    }
    let updated = Arc::new(updated);

    let mut client = PirClient::new(num_records, record_size, 9).unwrap();
    // Every updated region plus untouched records.
    let indices: Vec<u64> = vec![0, 2, 3, 99, 150, 299, 300, 407, 420];
    let (shares, _) = client.generate_batch(&indices).unwrap();

    let plans = [
        ShardPlan::uniform(num_records, 2).unwrap(),
        ShardPlan::from_ranges(vec![0..300, 300..400, 400..num_records]).unwrap(),
    ];
    for plan in plans {
        let shard_count = plan.shard_count();
        let sharded = ShardedDatabase::new(db.clone(), plan.clone()).unwrap();
        let mut engine = QueryEngine::sharded(&sharded, EngineConfig::default(), &factory).unwrap();
        let before = engine.execute_batch(&shares).unwrap();

        // All-or-nothing: a valid entry followed by an out-of-range one.
        let poisoned = vec![updates[0].clone(), (num_records, vec![0u8; record_size])];
        assert!(
            engine.apply_updates(&poisoned).is_err(),
            "{label} shards={shard_count}: poisoned batch must be rejected"
        );
        assert_eq!(engine.database_epoch(), 0);
        let after_poison = engine.execute_batch(&shares).unwrap();
        for (i, (b, a)) in before
            .responses
            .iter()
            .zip(&after_poison.responses)
            .enumerate()
        {
            assert_eq!(
                b.payload, a.payload,
                "{label} shards={shard_count} query {i}: a rejected batch must not touch any shard"
            );
        }

        // The real update: the live engine must now be indistinguishable
        // from a fresh engine built over the post-update database.
        let outcome = engine.apply_updates(&updates).unwrap();
        assert_eq!(outcome.records_updated, updates.len());
        assert_eq!(outcome.epoch, 1);
        let updated_out = engine.execute_batch(&shares).unwrap();
        let fresh_sharded = ShardedDatabase::new(updated.clone(), plan).unwrap();
        let mut fresh =
            QueryEngine::sharded(&fresh_sharded, EngineConfig::default(), &factory).unwrap();
        let fresh_out = fresh.execute_batch(&shares).unwrap();
        for (i, (u, f)) in updated_out
            .responses
            .iter()
            .zip(&fresh_out.responses)
            .enumerate()
        {
            assert_eq!(
                u.payload, f.payload,
                "{label} shards={shard_count} query {i}: updated engine vs fresh engine"
            );
        }
    }
}

#[test]
fn updated_sharded_cpu_engines_match_fresh_engines() {
    assert_updates_match_fresh_engines("cpu", |db, _| {
        CpuPirServer::new(db, CpuServerConfig::baseline())
    });
}

#[test]
fn updated_sharded_pim_engines_match_fresh_engines() {
    assert_updates_match_fresh_engines("pim", |db, _| {
        ImPirServer::new(db, ImPirConfig::tiny_test(4).with_clusters(2))
    });
}

#[test]
fn updated_sharded_streaming_engines_match_fresh_engines() {
    assert_updates_match_fresh_engines("streaming", |db, _| {
        let config = StreamingConfig::new(ImPirConfig::tiny_test(4), 512)?;
        StreamingImPirServer::new(db, config)
    });
}

/// A capacity-planned layout is pure distribution policy: on a mixed
/// PIM+CPU+streaming fleet (heterogeneous backends as boxed trait objects
/// behind one engine), the planned engine must answer byte-identically to a
/// uniform one — before updates, after a rejected (poisoned) batch, and
/// after a committed update batch, where both must also match a fresh
/// engine built over the already-updated database.
#[test]
fn planned_layouts_match_uniform_layouts_pre_and_post_update() {
    use im_pir::core::capacity::ShardPlanner;
    use im_pir::core::UpdatableBackend;

    type DynBackend = Box<dyn UpdatableBackend + Send + Sync>;

    let num_records: u64 = 1500;
    let record_size = 32;
    let db = Arc::new(Database::random(num_records, record_size, 41).unwrap());
    let pim_config = ImPirConfig::tiny_test(8).with_clusters(2);
    let cpu_config = CpuServerConfig::baseline();
    let streaming_config = StreamingConfig::new(ImPirConfig::tiny_test(4), 1024).unwrap();
    let backend =
        |shard_db: Arc<Database>, shard: usize| -> Result<DynBackend, im_pir::core::PirError> {
            Ok(match shard {
                0 => Box::new(ImPirServer::new(shard_db, pim_config.clone())?),
                1 => Box::new(CpuPirServer::new(shard_db, cpu_config.clone())?),
                _ => Box::new(StreamingImPirServer::new(
                    shard_db,
                    streaming_config.clone(),
                )?),
            })
        };
    let planner = ShardPlanner::new(vec![
        pim_config.capacity_profile(record_size).unwrap(),
        cpu_config.capacity_profile().unwrap(),
        streaming_config.capacity_profile(record_size).unwrap(),
    ])
    .unwrap();

    let uniform = ShardedDatabase::uniform(db.clone(), 3).unwrap();
    let mut uniform_engine =
        QueryEngine::sharded(&uniform, EngineConfig::default(), backend).unwrap();
    let mut planned_engine =
        QueryEngine::planned(db.clone(), EngineConfig::default(), &planner, backend).unwrap();
    // The planner really moved the boundaries.
    assert_ne!(
        planned_engine.plan(),
        uniform_engine.plan(),
        "an asymmetric fleet must not plan uniformly"
    );

    let mut client = PirClient::new(num_records, record_size, 17).unwrap();
    // Queries at both layouts' shard boundaries plus interior points.
    let mut indices: Vec<u64> = vec![0, num_records / 2, num_records - 1, 733];
    for plan in [uniform_engine.plan().clone(), planned_engine.plan().clone()] {
        for range in plan.ranges() {
            indices.push(range.start);
            indices.push(range.end - 1);
        }
    }
    let (shares, second_shares) = client.generate_batch(&indices).unwrap();

    // Pre-update identity, and real PIR subresults (reconstruct against a
    // second, unsharded server).
    let uniform_out = uniform_engine.execute_batch(&shares).unwrap();
    let planned_out = planned_engine.execute_batch(&shares).unwrap();
    let mut second = CpuPirBaseline::new(db.clone()).unwrap();
    let second_out = second.process_batch(&second_shares).unwrap();
    for (i, &index) in indices.iter().enumerate() {
        assert_eq!(
            uniform_out.responses[i].payload, planned_out.responses[i].payload,
            "pre-update query {i}"
        );
        let record = client
            .reconstruct(&planned_out.responses[i], &second_out.responses[i])
            .unwrap();
        assert_eq!(record, db.record(index), "pre-update index {index}");
    }

    // A poisoned batch must leave both layouts untouched (all-or-nothing).
    let poisoned = vec![
        (1u64, vec![0x11; record_size]),
        (num_records, vec![0x11; record_size]),
    ];
    assert!(uniform_engine.apply_updates(&poisoned).is_err());
    assert!(planned_engine.apply_updates(&poisoned).is_err());

    // Committed updates: one per backend's region under both layouts.
    let updates: Vec<(u64, Vec<u8>)> = [0u64, 499, 500, 999, 1000, num_records - 1]
        .iter()
        .enumerate()
        .map(|(i, &index)| (index, vec![0xB0 | i as u8; record_size]))
        .collect();
    let mut updated = (*db).clone();
    for (index, bytes) in &updates {
        updated.set_record(*index, bytes).unwrap();
    }
    let updated = Arc::new(updated);
    uniform_engine.apply_updates(&updates).unwrap();
    planned_engine.apply_updates(&updates).unwrap();

    let uniform_after = uniform_engine.execute_batch(&shares).unwrap();
    let planned_after = planned_engine.execute_batch(&shares).unwrap();
    // Both layouts agree with each other and with a fresh planned engine
    // built over the already-updated database.
    let mut fresh =
        QueryEngine::planned(updated.clone(), EngineConfig::default(), &planner, backend).unwrap();
    let fresh_out = fresh.execute_batch(&shares).unwrap();
    for i in 0..indices.len() {
        assert_eq!(
            uniform_after.responses[i].payload, planned_after.responses[i].payload,
            "post-update query {i}: uniform vs planned"
        );
        assert_eq!(
            planned_after.responses[i].payload, fresh_out.responses[i].payload,
            "post-update query {i}: live planned vs fresh over updated db"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_backends_agree_and_reconstruct(
        num_records in 3u64..500,
        record_words in 1usize..4,
        dpus in 1usize..6,
        seed in any::<u64>(),
    ) {
        let record_size = record_words * 8;
        let db = Arc::new(Database::random(num_records, record_size, seed).unwrap());
        let (mut cpu, mut gpu, mut pim) = build_systems(&db, dpus);
        let mut client = PirClient::new(num_records, record_size, seed ^ 7).unwrap();
        let index = seed % num_records;
        let (share_1, share_2) = client.generate_query(index).unwrap();

        let shares_1 = vec![share_1];
        let cpu_out = cpu.process_batch(&shares_1).unwrap();
        let gpu_out = gpu.process_batch(&shares_1).unwrap();
        let pim_out = pim.process_batch(&shares_1).unwrap();
        prop_assert_eq!(&cpu_out.responses[0].payload, &gpu_out.responses[0].payload);
        prop_assert_eq!(&cpu_out.responses[0].payload, &pim_out.responses[0].payload);

        // Reconstruct against a CPU second server.
        let mut second = CpuPirBaseline::new(db.clone()).unwrap();
        let second_out = second.process_batch(&[share_2]).unwrap();
        let record = client
            .reconstruct(&pim_out.responses[0], &second_out.responses[0])
            .unwrap();
        prop_assert_eq!(record, db.record(index).to_vec());
    }
}
