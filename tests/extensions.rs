//! Integration tests for the features the paper sketches beyond its
//! evaluated configuration: n-server deployments, in-place bulk database
//! updates, and the out-of-core (streaming) execution mode.

use std::sync::Arc;

use im_pir::core::client::PirClient;
use im_pir::core::database::Database;
use im_pir::core::multi_server::NServerNaivePir;
use im_pir::core::scheme::TwoServerPir;
use im_pir::core::server::cpu::CpuServerConfig;
use im_pir::core::server::pim::{ImPirConfig, ImPirServer};
use im_pir::core::server::streaming::{StreamingConfig, StreamingImPirServer};
use im_pir::core::server::PirServer;
use im_pir::pim::PimConfig;

fn tiny_config(dpus: usize, clusters: usize) -> ImPirConfig {
    ImPirConfig {
        pim: PimConfig::tiny_test(dpus, 8 << 20),
        clusters,
        eval_threads: 1,
    }
}

#[test]
fn n_server_deployments_answer_correctly_and_scale_upload_cost() {
    let db = Arc::new(Database::random(400, 32, 8).unwrap());
    let mut previous_upload = 0;
    for servers in [2usize, 3, 4, 6] {
        let mut pir = NServerNaivePir::new(db.clone(), servers, servers as u64).unwrap();
        for index in [0u64, 199, 399] {
            assert_eq!(
                pir.query(index).unwrap(),
                db.record(index),
                "servers={servers}"
            );
        }
        // §3: communication overhead grows with the number of servers.
        assert!(pir.upload_bytes_per_query() > previous_upload);
        previous_upload = pir.upload_bytes_per_query();
    }
}

#[test]
fn streaming_mode_matches_preloaded_mode_and_pays_for_retransfer() {
    let db = Arc::new(Database::random(1024, 32, 12).unwrap());
    let mut preloaded = ImPirServer::new(db.clone(), tiny_config(4, 1)).unwrap();
    let streaming_config = StreamingConfig::new(tiny_config(4, 1), 2048).unwrap();
    let mut streaming = StreamingImPirServer::new(db.clone(), streaming_config).unwrap();
    assert!(streaming.segments() > 1);

    let mut client = PirClient::new(1024, 32, 4).unwrap();
    for index in [1u64, 512, 1023] {
        let (share, _) = client.generate_query(index).unwrap();
        let (from_preloaded, preloaded_phases) = preloaded.process_query(&share).unwrap();
        let (from_streaming, streaming_phases) = streaming.process_query(&share).unwrap();
        assert_eq!(from_preloaded.payload, from_streaming.payload);
        // Streaming re-pushes the database every query, so its CPU→DPU
        // phase must cost (much) more than the preloaded server's, which
        // only ships the selector bits.
        assert!(
            streaming_phases.copy_to_pim.simulated_seconds.unwrap()
                > preloaded_phases.copy_to_pim.simulated_seconds.unwrap()
        );
    }
}

#[test]
fn deployments_update_both_servers_through_their_engines() {
    let db = Arc::new(Database::random(300, 16, 14).unwrap());
    let mut oracle = (*db).clone();
    // Two-server deployments: sharded PIM and sharded CPU.
    let mut pim = TwoServerPir::with_sharded_pim_servers(db.clone(), tiny_config(4, 2), 2).unwrap();
    let mut cpu =
        TwoServerPir::with_sharded_cpu_servers(db.clone(), CpuServerConfig::baseline(), 3).unwrap();
    // An n-server deployment over a sharded engine.
    let mut naive = NServerNaivePir::sharded(db.clone(), 3, 4, 5).unwrap();

    let updates: Vec<(u64, Vec<u8>)> = vec![
        (0, vec![0x10; 16]),
        (149, vec![0x20; 16]),
        (150, vec![0x30; 16]),
        (299, vec![0x40; 16]),
    ];
    for (index, bytes) in &updates {
        oracle.set_record(*index, bytes).unwrap();
    }
    let (pim_outcome_1, pim_outcome_2) = pim.apply_updates(&updates).unwrap();
    assert_eq!(pim_outcome_1.records_updated, 4);
    assert_eq!(pim_outcome_1.epoch, 1);
    assert!(pim_outcome_2.bytes_pushed > 0);
    cpu.apply_updates(&updates).unwrap();
    let naive_outcome = naive.apply_updates(&updates).unwrap();
    assert_eq!(naive_outcome.epoch, 1);

    for index in [0u64, 149, 150, 299, 75] {
        let expected = oracle.record(index);
        assert_eq!(pim.query(index).unwrap(), expected, "pim index {index}");
        assert_eq!(cpu.query(index).unwrap(), expected, "cpu index {index}");
        assert_eq!(naive.query(index).unwrap(), expected, "naive index {index}");
    }

    // The benchmark harness' system wrapper updates through the engine
    // too: two sharded IM-PIR systems (different shard counts) receiving
    // the same update batch reconstruct the updated records.
    use im_pir::baselines::{ImPirSystem, SystemUnderTest};
    let mut system_1 = ImPirSystem::sharded(db.clone(), tiny_config(4, 1), 2).unwrap();
    let mut system_2 = ImPirSystem::sharded(db.clone(), tiny_config(4, 2), 3).unwrap();
    system_1.apply_updates(&updates).unwrap();
    system_2.apply_updates(&updates).unwrap();
    let mut client = PirClient::new(300, 16, 8).unwrap();
    let queried = [0u64, 150, 299];
    let (shares_1, shares_2) = client.generate_batch(&queried).unwrap();
    let out_1 = system_1.process_batch(&shares_1).unwrap();
    let out_2 = system_2.process_batch(&shares_2).unwrap();
    for (i, &index) in queried.iter().enumerate() {
        let record = client
            .reconstruct(&out_1.responses[i], &out_2.responses[i])
            .unwrap();
        assert_eq!(record, oracle.record(index), "system index {index}");
    }
}

#[test]
fn updates_combined_with_batches_and_clusters_stay_consistent() {
    let db = Arc::new(Database::random(512, 16, 9).unwrap());
    let mut oracle = (*db).clone();
    let mut server_1 = ImPirServer::new(db.clone(), tiny_config(8, 4)).unwrap();
    let mut server_2 = ImPirServer::new(db.clone(), tiny_config(8, 4)).unwrap();
    let mut client = PirClient::new(512, 16, 2).unwrap();

    // Interleave updates and batched queries a few times.
    for round in 0u64..3 {
        let updates: Vec<(u64, Vec<u8>)> = (0..8)
            .map(|i| {
                let index = (round * 97 + i * 31) % 512;
                (index, vec![(round as u8) * 16 + i as u8; 16])
            })
            .collect();
        for (index, bytes) in &updates {
            oracle.set_record(*index, bytes).unwrap();
        }
        server_1.apply_updates(&updates).unwrap();
        server_2.apply_updates(&updates).unwrap();

        let indices: Vec<u64> = (0..16).map(|i| (round * 13 + i * 29) % 512).collect();
        let (shares_1, shares_2) = client.generate_batch(&indices).unwrap();
        let outcome_1 = server_1.process_batch(&shares_1).unwrap();
        let outcome_2 = server_2.process_batch(&shares_2).unwrap();
        for (i, index) in indices.iter().enumerate() {
            let record = client
                .reconstruct(&outcome_1.responses[i], &outcome_2.responses[i])
                .unwrap();
            assert_eq!(
                record,
                oracle.record(*index),
                "round {round}, index {index}"
            );
        }
    }
}
