//! Property tests for the wire protocol: serialize→deserialize identity
//! for every frame type, and clean (panic-free, allocation-bounded)
//! errors for corrupt, truncated and oversized inputs.

use im_pir::core::server::phases::{PhaseBreakdown, PhaseTime};
use im_pir::core::wire::{EpochInfo, Frame, ServerInfo, MAX_FRAME_BYTES, WIRE_VERSION};
use im_pir::core::{PirError, QueryShare, ServerResponse, UpdateOutcome};
use im_pir::dpf::gen::generate_keys;
use im_pir::dpf::{PartyId, SelectorVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of frame kinds `arbitrary_frame` cycles through.
const FRAME_KINDS: u64 = 19;

fn arbitrary_phase_time(rng: &mut StdRng) -> PhaseTime {
    // Finite, non-NaN values only: frame equality is the property under
    // test, not float semantics.
    let wall = (rng.gen_range(0..1_000_000u64) as f64) / 1e4;
    if rng.gen_range(0..2u32) == 0 {
        PhaseTime::host(wall)
    } else {
        PhaseTime::pim(wall, (rng.gen_range(0..1_000_000u64) as f64) / 1e6)
    }
}

fn arbitrary_phases(rng: &mut StdRng) -> PhaseBreakdown {
    PhaseBreakdown {
        eval: arbitrary_phase_time(rng),
        copy_to_pim: arbitrary_phase_time(rng),
        dpxor: arbitrary_phase_time(rng),
        copy_from_pim: arbitrary_phase_time(rng),
        aggregate: arbitrary_phase_time(rng),
    }
}

fn arbitrary_info(rng: &mut StdRng) -> ServerInfo {
    ServerInfo {
        num_records: rng.gen_range(1..1u64 << 40),
        record_size: rng.gen_range(1..1usize << 20),
        shard_count: rng.gen_range(1..4096usize),
        epoch: rng.gen_range(0..u64::MAX),
    }
}

fn arbitrary_shares(rng: &mut StdRng, count: usize) -> Vec<QueryShare> {
    (0..count)
        .map(|_| {
            let domain_bits = rng.gen_range(1..20u32);
            let index = rng.gen_range(0..1u64 << domain_bits);
            let (k1, k2) = generate_keys(domain_bits, index, rng).expect("valid key parameters");
            let key = if rng.gen_range(0..2u32) == 0 { k1 } else { k2 };
            QueryShare::new(rng.gen_range(0..u64::MAX), key)
        })
        .collect()
}

fn arbitrary_responses(rng: &mut StdRng, count: usize) -> Vec<ServerResponse> {
    (0..count)
        .map(|_| {
            let len = rng.gen_range(0..96usize);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=u8::MAX)).collect();
            let party = if rng.gen_range(0..2u32) == 0 {
                PartyId::Server1
            } else {
                PartyId::Server2
            };
            ServerResponse::new(rng.gen_range(0..u64::MAX), party, payload)
        })
        .collect()
}

fn arbitrary_selector(rng: &mut StdRng) -> SelectorVector {
    let bits = rng.gen_range(0..700usize);
    (0..bits).map(|_| rng.gen_range(0..2u32) == 1).collect()
}

/// A deterministic arbitrary frame of the kind selected by `kind`.
fn arbitrary_frame(kind: u64, seed: u64) -> Frame {
    let mut rng = StdRng::seed_from_u64(seed);
    let rng = &mut rng;
    match kind % FRAME_KINDS {
        0 => Frame::Hello {
            version: WIRE_VERSION,
        },
        1 => Frame::HelloAck {
            version: rng.gen_range(0..u16::MAX as u32) as u16,
            info: arbitrary_info(rng),
        },
        2 => {
            let count = rng.gen_range(0..5usize);
            Frame::QueryBatch {
                shares: arbitrary_shares(rng, count),
            }
        }
        3 => {
            let count = rng.gen_range(0..5usize);
            Frame::ResponseBatch {
                epoch: rng.gen_range(0..u64::MAX),
                wall_seconds: (rng.gen_range(0..1_000_000u64) as f64) / 1e5,
                phases: arbitrary_phases(rng),
                responses: arbitrary_responses(rng, count),
            }
        }
        4 => {
            let count = rng.gen_range(0..5usize);
            let updates = (0..count)
                .map(|_| {
                    let len = rng.gen_range(0..64usize);
                    let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=u8::MAX)).collect();
                    (rng.gen_range(0..u64::MAX), bytes)
                })
                .collect();
            Frame::UpdateBatch { updates }
        }
        5 => Frame::UpdateAck {
            outcome: UpdateOutcome {
                records_updated: rng.gen_range(0..1usize << 40),
                bytes_pushed: rng.gen_range(0..u64::MAX),
                simulated_seconds: (rng.gen_range(0..1_000_000u64) as f64) / 1e6,
                epoch: rng.gen_range(0..u64::MAX),
            },
        },
        6 => Frame::InfoRequest,
        7 => Frame::Info {
            info: arbitrary_info(rng),
        },
        8 => Frame::SelectorScan {
            selector: arbitrary_selector(rng),
        },
        9 => {
            let len = rng.gen_range(0..96usize);
            Frame::SelectorResult {
                epoch: rng.gen_range(0..u64::MAX),
                payload: (0..len).map(|_| rng.gen_range(0..=u8::MAX)).collect(),
                phases: arbitrary_phases(rng),
            }
        }
        10 => {
            let len = rng.gen_range(0..60usize);
            let message: String = (0..len)
                .map(|_| char::from(rng.gen_range(b' '..b'~')))
                .collect();
            Frame::Error { message }
        }
        11 => Frame::EpochInfoRequest,
        12 => Frame::EpochInfo {
            info: EpochInfo {
                current_epoch: rng.gen_range(0..u64::MAX),
                oldest_replayable: rng.gen_range(0..u64::MAX),
            },
        },
        13 => Frame::UpdateReplayRequest {
            from_epoch: rng.gen_range(0..u64::MAX),
        },
        14 => {
            // Nested batches, including empty ones — both levels of length
            // prefix are exercised.
            let batch_count = rng.gen_range(0..4usize);
            let batches = (0..batch_count)
                .map(|_| {
                    let count = rng.gen_range(0..4usize);
                    (0..count)
                        .map(|_| {
                            let len = rng.gen_range(0..32usize);
                            let bytes: Vec<u8> =
                                (0..len).map(|_| rng.gen_range(0..=u8::MAX)).collect();
                            (rng.gen_range(0..u64::MAX), bytes)
                        })
                        .collect()
                })
                .collect();
            Frame::UpdateReplay { batches }
        }
        15 => Frame::JournalTruncated {
            from_epoch: rng.gen_range(0..u64::MAX),
            oldest_replayable: rng.gen_range(0..u64::MAX),
            current_epoch: rng.gen_range(0..u64::MAX),
        },
        16 => Frame::Goodbye,
        17 => {
            // Wrap any non-Mux kind: nesting is a protocol violation, so
            // the generator skips kind 17 when picking the inner frame.
            let inner = rng.gen_range(0..FRAME_KINDS - 1);
            let inner = if inner == 17 { 18 } else { inner };
            Frame::Mux {
                session: rng.gen_range(0..u32::MAX),
                frame: Box::new(arbitrary_frame(inner, rng.gen())),
            }
        }
        _ => Frame::Overloaded {
            retry_after_ms: rng.gen_range(0..u64::MAX),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Every frame type round-trips byte-exactly through encode/decode.
    #[test]
    fn prop_all_frame_types_roundtrip(kind in 0u64..FRAME_KINDS, seed in any::<u64>()) {
        let frame = arbitrary_frame(kind, seed);
        let encoded = frame.encode().expect("arbitrary frames fit the limit");
        let decoded = Frame::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(decoded, frame);
    }

    /// Any truncation of a valid frame decodes to a clean error.
    #[test]
    fn prop_truncations_decode_to_errors(
        kind in 0u64..FRAME_KINDS,
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let frame = arbitrary_frame(kind, seed);
        let encoded = frame.encode().expect("encodes");
        let cut = (cut_seed % encoded.len() as u64) as usize;
        prop_assert!(matches!(
            Frame::decode(&encoded[..cut]),
            Err(PirError::Protocol { .. })
        ));
    }

    /// Flipping any byte never panics: the decoder returns either a clean
    /// error or another *valid* frame (whose re-encoding decodes again).
    #[test]
    fn prop_corruption_never_panics(
        kind in 0u64..FRAME_KINDS,
        seed in any::<u64>(),
        position_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let frame = arbitrary_frame(kind, seed);
        let mut encoded = frame.encode().expect("encodes");
        let position = (position_seed % encoded.len() as u64) as usize;
        encoded[position] ^= flip;
        match Frame::decode(&encoded) {
            Err(PirError::Protocol { .. }) => {}
            Err(other) => prop_assert!(false, "non-protocol error: {other:?}"),
            Ok(reinterpreted) => {
                // A flip that survived decoding (e.g. inside a payload)
                // must have produced a self-consistent frame.
                let reencoded = reinterpreted.encode().expect("valid frames encode");
                prop_assert_eq!(Frame::decode(&reencoded).expect("roundtrips"), reinterpreted);
            }
        }
    }

    /// Hostile outer length prefixes are rejected before any allocation,
    /// for every announced size above the limit.
    #[test]
    fn prop_oversized_length_prefixes_are_rejected(extra in 1u64..u32::MAX as u64 - MAX_FRAME_BYTES as u64) {
        let announced = (MAX_FRAME_BYTES as u64 + extra) as u32;
        let mut bytes = announced.to_le_bytes().to_vec();
        bytes.push(7); // any tag
        prop_assert!(matches!(
            Frame::decode(&bytes),
            Err(PirError::Protocol { .. })
        ));
    }

    /// Hostile *inner* length prefixes (a key or payload claiming more
    /// bytes than the frame holds) are rejected without allocating.
    #[test]
    fn prop_hostile_inner_lengths_are_rejected(claimed in 1_000u32..u32::MAX, id in any::<u64>()) {
        // Hand-build a QueryBatch whose single share claims `claimed` key
        // bytes but carries none.
        let mut body = Vec::new();
        body.push(3u8); // QueryBatch tag
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&id.to_le_bytes());
        body.extend_from_slice(&claimed.to_le_bytes());
        let mut bytes = ((body.len()) as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&body);
        prop_assert!(matches!(
            Frame::decode(&bytes),
            Err(PirError::Protocol { .. })
        ));
    }

    /// A hostile `UpdateReplay` claiming huge batch/entry counts it does
    /// not carry is rejected cleanly — the nested length prefixes cannot
    /// drive allocation beyond the frame's actual bytes.
    #[test]
    fn prop_hostile_replay_counts_are_rejected(claimed in 1_000u32..u32::MAX) {
        let mut body = Vec::new();
        body.push(16u8); // UpdateReplay tag
        body.extend_from_slice(&claimed.to_le_bytes()); // batches "present"
        let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&body);
        prop_assert!(matches!(
            Frame::decode(&bytes),
            Err(PirError::Protocol { .. })
        ));
    }

    /// The encoder refuses to put a `Mux` inside a `Mux` for any pair of
    /// session ids — the violation is caught before bytes hit the wire.
    #[test]
    fn prop_encoder_refuses_nested_mux(outer in any::<u32>(), inner in any::<u32>()) {
        let nested = Frame::Mux {
            session: outer,
            frame: Box::new(Frame::Mux {
                session: inner,
                frame: Box::new(Frame::Goodbye),
            }),
        };
        prop_assert!(matches!(nested.encode(), Err(PirError::Protocol { .. })));
    }

    /// Hand-built wire bytes nesting a `Mux` inside a `Mux` decode to a
    /// clean protocol error for any session ids — never a panic.
    #[test]
    fn prop_decoder_rejects_nested_mux_bytes(outer in any::<u32>(), inner in any::<u32>()) {
        let mut body = Vec::new();
        body.push(18u8); // Mux tag
        body.extend_from_slice(&outer.to_le_bytes());
        body.push(18u8); // inner Mux tag — hostile
        body.extend_from_slice(&inner.to_le_bytes());
        body.push(12u8); // innermost Goodbye
        let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&body);
        prop_assert!(matches!(
            Frame::decode(&bytes),
            Err(PirError::Protocol { .. })
        ));
    }

    /// A `Mux` wrapper whose inner frame claims more bytes than the
    /// connection delivered is rejected without allocating: the outer
    /// length prefix bounds the inner frame too.
    #[test]
    fn prop_hostile_mux_inner_lengths_are_rejected(
        session in any::<u32>(),
        claimed in 1_000u32..u32::MAX,
        id in any::<u64>(),
    ) {
        let mut body = Vec::new();
        body.push(18u8); // Mux tag
        body.extend_from_slice(&session.to_le_bytes());
        body.push(3u8); // inner QueryBatch tag
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&id.to_le_bytes());
        body.extend_from_slice(&claimed.to_le_bytes()); // key bytes it does not carry
        let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&body);
        prop_assert!(matches!(
            Frame::decode(&bytes),
            Err(PirError::Protocol { .. })
        ));
    }

    /// A `Mux` cut anywhere — even mid-session-id, before the inner tag —
    /// decodes to a clean protocol error.
    #[test]
    fn prop_truncated_mux_is_rejected(
        session in any::<u32>(),
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let frame = Frame::Mux {
            session,
            frame: Box::new(arbitrary_frame(seed % 17, seed)),
        };
        let encoded = frame.encode().expect("encodes");
        let cut = (cut_seed % encoded.len() as u64) as usize;
        prop_assert!(matches!(
            Frame::decode(&encoded[..cut]),
            Err(PirError::Protocol { .. })
        ));
    }

    /// Trailing garbage after a well-formed body is rejected for the new
    /// epoch/replay frames (the reader's `finish` check).
    #[test]
    fn prop_trailing_garbage_after_new_frames_is_rejected(
        kind in 11u64..16u64,
        seed in any::<u64>(),
        garbage in 1usize..16,
    ) {
        let frame = arbitrary_frame(kind, seed);
        let mut encoded = frame.encode().expect("encodes");
        // Extend the body AND fix the outer length so only the *inner*
        // trailing-garbage check can catch it.
        encoded.extend(std::iter::repeat_n(0xA5u8, garbage));
        let new_len = (encoded.len() - 4) as u32;
        encoded[..4].copy_from_slice(&new_len.to_le_bytes());
        prop_assert!(matches!(
            Frame::decode(&encoded),
            Err(PirError::Protocol { .. })
        ));
    }
}

#[test]
fn overloaded_trailing_garbage_is_rejected() {
    let frame = Frame::Overloaded { retry_after_ms: 25 };
    let mut encoded = frame.encode().expect("encodes");
    encoded.push(0xA5);
    let new_len = (encoded.len() - 4) as u32;
    encoded[..4].copy_from_slice(&new_len.to_le_bytes());
    assert!(matches!(
        Frame::decode(&encoded),
        Err(PirError::Protocol { .. })
    ));
}

#[test]
fn empty_input_and_empty_length_are_rejected() {
    assert!(matches!(Frame::decode(&[]), Err(PirError::Protocol { .. })));
    let mut zero = 0u32.to_le_bytes().to_vec();
    zero.push(1);
    assert!(matches!(
        Frame::decode(&zero),
        Err(PirError::Protocol { .. })
    ));
}
