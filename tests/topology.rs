//! Property and acceptance tests for the topology layer: hostile config
//! input must decode to a clean [`PirError::Config`] (line-numbered,
//! never a panic), parse→serialize→parse must be the identity, the
//! classic server flags must desugar to the exact topology a file form
//! describes, and every checked-in `examples/topologies/*.fleet` file
//! must stay valid.

use im_pir::core::dpxor::KernelChoice;
use im_pir::core::topology::{
    BackendSpec, FleetTopology, ReplicaSpec, RetrySpec, RouterSpec, ShardPolicy, TransportKind,
};
use im_pir::core::PirError;
use impir_server::cli::{parse_options, topology_from_flags};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parsing must end in a topology or a `Config` error — anything else
/// (panic, wrong error class) is a bug the property tests hunt for.
fn parses_cleanly(input: &str) -> Result<FleetTopology, ()> {
    match FleetTopology::parse(input) {
        Ok(topology) => Ok(topology),
        Err(PirError::Config { .. }) => Err(()),
        Err(other) => panic!("hostile input must map to PirError::Config, got {other:?}"),
    }
}

/// A deterministic arbitrary *valid* topology: every field the config
/// format can express, across both backends, both transports, per-replica
/// overrides and an optional router section.
fn arbitrary_topology(seed: u64) -> FleetTopology {
    let mut rng = StdRng::seed_from_u64(seed);
    let rng = &mut rng;
    let mut topology = FleetTopology::new(
        rng.gen_range(1..1u64 << 32),
        rng.gen_range(1..4096usize),
        rng.gen_range(0..u64::MAX),
    );
    topology.sharding = arbitrary_sharding(rng);
    topology.journal_batches = rng.gen_range(0..1024usize);
    topology.scan_kernel = arbitrary_kernel(rng);
    topology.io_timeout_ms = rng.gen_range(1..100_000u64);
    topology.retry = RetrySpec {
        attempts: rng.gen_range(1..64u32),
        backoff_ms: rng.gen_range(0..100_000u64),
        max_backoff_ms: rng.gen_range(0..100_000u64),
        io_timeout_ms: rng.gen_range(0..100_000u64),
    };
    // A router requires an all-TCP fleet.
    let routed = rng.gen_range(0..3u32) == 0;
    let replicas = rng.gen_range(1..5usize);
    for index in 0..replicas {
        let tcp = routed || rng.gen_range(0..2u32) == 0;
        let mut replica = if tcp {
            ReplicaSpec::tcp(
                format!("r{index}.node-A_{}", rng.gen_range(0..100u32)),
                format!("127.0.0.1:{}", rng.gen_range(1024..65535u32)),
            )
        } else {
            ReplicaSpec::local(format!("r{index}.node-A_{}", rng.gen_range(0..100u32)))
        };
        if rng.gen_range(0..2u32) == 0 {
            replica.backend = BackendSpec::Pim {
                dpus: rng.gen_range(1..64usize),
                clusters: rng.gen_range(1..16usize),
            };
        } else if rng.gen_range(0..2u32) == 0 {
            // Scan-kernel overrides are a cpu-only concept.
            replica.scan_kernel = Some(arbitrary_kernel(rng));
        }
        if rng.gen_range(0..2u32) == 0 {
            replica.sharding = Some(arbitrary_sharding(rng));
        }
        topology.replicas.push(replica);
    }
    if routed {
        topology.router = Some(RouterSpec {
            listen: format!("127.0.0.1:{}", rng.gen_range(1024..65535u32)),
            probe_interval_ms: rng.gen_range(1..60_000u64),
            max_lag_epochs: rng.gen_range(0..16u64),
        });
    }
    topology
}

fn arbitrary_sharding(rng: &mut StdRng) -> ShardPolicy {
    match rng.gen_range(0..3u32) {
        0 => ShardPolicy::Uniform(rng.gen_range(1..64usize)),
        1 => ShardPolicy::Declared,
        _ => ShardPolicy::Calibrated,
    }
}

fn arbitrary_kernel(rng: &mut StdRng) -> KernelChoice {
    match rng.gen_range(0..4u32) {
        0 => KernelChoice::Auto,
        1 => KernelChoice::Scalar,
        2 => KernelChoice::Wide,
        _ => KernelChoice::Unrolled,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// parse(serialize(t)) == t for arbitrary valid topologies: the config
    /// format loses nothing, across backends, transports, overrides and
    /// router sections.
    #[test]
    fn prop_parse_serialize_parse_is_identity(seed in any::<u64>()) {
        let topology = arbitrary_topology(seed);
        prop_assume!(topology.validate().is_ok()); // duplicate random names
        let serialized = topology.to_config_string();
        let reparsed = FleetTopology::parse(&serialized)
            .expect("canonical serialization must reparse");
        prop_assert_eq!(reparsed, topology);
    }

    /// Printable garbage never panics the parser and never produces a
    /// non-Config error.
    #[test]
    fn prop_garbage_input_errors_cleanly(seed in any::<u64>(), len in 0usize..600) {
        let mut rng = StdRng::seed_from_u64(seed);
        let garbage: String = (0..len)
            .map(|_| {
                // Bias toward the format's structural characters so the
                // generator actually reaches deep parser states.
                let structural = b"[]=# \n.-_records0123456789replica";
                char::from(structural[rng.gen_range(0..structural.len())])
            })
            .collect();
        let _ = parses_cleanly(&garbage);
    }

    /// Truncating a valid config at any char boundary either still parses
    /// (the cut fell between sections) or fails with a Config error —
    /// never a panic, never a bogus topology that fails validate().
    #[test]
    fn prop_truncations_error_cleanly(seed in any::<u64>(), cut in 0usize..4096) {
        let full = arbitrary_topology(seed).to_config_string();
        let cut = cut % (full.len() + 1);
        prop_assume!(full.is_char_boundary(cut));
        if let Ok(topology) = parses_cleanly(&full[..cut]) {
            prop_assert!(topology.validate().is_ok());
        }
    }

    /// Duplicating any `key = value` line is rejected: silent last-wins
    /// (or first-wins) would make fleet files ambiguous.
    #[test]
    fn prop_duplicate_keys_are_rejected(seed in any::<u64>(), pick in any::<u64>()) {
        let topology = arbitrary_topology(seed);
        prop_assume!(topology.validate().is_ok());
        let full = topology.to_config_string();
        let keyed: Vec<&str> = full.lines().filter(|l| l.contains('=')).collect();
        let line = keyed[(pick % keyed.len() as u64) as usize];
        // Re-insert the picked line directly after itself: same section,
        // same key, twice.
        let duplicated = full.replacen(line, &format!("{line}\n{line}"), 1);
        let err = FleetTopology::parse(&duplicated)
            .expect_err("duplicate keys must be rejected");
        let PirError::Config { reason } = err else {
            panic!("expected a Config error, got {err:?}");
        };
        prop_assert!(reason.contains("line "), "no line number in: {reason}");
        prop_assert!(reason.contains("duplicate"), "not a duplicate error: {reason}");
    }

    /// Numbers too large for their field are a line-numbered Config error,
    /// not a wraparound or a panic.
    #[test]
    fn prop_overflowing_numbers_are_rejected(extra_digits in 1usize..30) {
        let huge = format!("18446744073709551616{}", "9".repeat(extra_digits));
        let input = format!("[fleet]\nrecords = {huge}\n\n[replica a]\ntransport = local\n");
        let err = FleetTopology::parse(&input).expect_err("overflow must be rejected");
        let PirError::Config { reason } = err else {
            panic!("expected a Config error, got {err:?}");
        };
        prop_assert!(reason.contains("line 2"), "wrong/missing line number: {reason}");
    }
}

/// Satellite pin: the classic flag form and the file form of the SAME
/// deployment build equal `FleetTopology` values — the flags are sugar,
/// not a second config language.
#[test]
fn flag_built_and_file_built_topologies_are_equal() {
    let args: Vec<String> = [
        "--listen",
        "127.0.0.1:17700",
        "--records",
        "8192",
        "--record-bytes",
        "64",
        "--seed",
        "1234",
        "--backend",
        "pim",
        "--dpus",
        "16",
        "--clusters",
        "4",
        "--autoshard",
        "declared",
        "--journal-batches",
        "128",
        "--io-timeout-ms",
        "75",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let from_flags = topology_from_flags(&parse_options(&args).unwrap()).unwrap();

    let file = "\
# the same deployment, as a file
[fleet]
records = 8192
record-bytes = 64
seed = 1234
autoshard = declared
journal-batches = 128
scan-kernel = auto
io-timeout-ms = 75

[replica primary]
transport = tcp
listen = 127.0.0.1:17700
backend = pim
dpus = 16
clusters = 4
";
    let from_file = FleetTopology::parse(file).unwrap();
    assert_eq!(from_flags, from_file);

    // And both survive the canonical serializer unchanged.
    assert_eq!(
        FleetTopology::parse(&from_flags.to_config_string()).unwrap(),
        from_file
    );
}

/// Every checked-in example topology file parses, validates, and
/// round-trips through the canonical serializer.
#[test]
fn checked_in_topology_files_stay_valid() {
    for name in [
        "single_host_dev.fleet",
        "two_replica_tcp.fleet",
        "router_mixed_fleet.fleet",
    ] {
        let path = format!("examples/topologies/{name}");
        let topology = FleetTopology::from_file(&path)
            .unwrap_or_else(|err| panic!("{path} must parse: {err}"));
        topology
            .validate()
            .unwrap_or_else(|err| panic!("{path} must validate: {err}"));
        let reparsed = FleetTopology::parse(&topology.to_config_string()).unwrap();
        assert_eq!(reparsed, topology, "{path} must round-trip");
    }
}

/// A nonexistent file is a Config error naming the path, not an I/O
/// panic.
#[test]
fn missing_topology_file_errors_with_the_path() {
    let err = FleetTopology::from_file("examples/topologies/no_such.fleet").unwrap_err();
    let PirError::Config { reason } = err else {
        panic!("expected Config, got {err:?}");
    };
    assert!(reason.contains("no_such.fleet"), "{reason}");
}

/// The transport kinds the parser infers: an explicit `transport` line
/// always wins; without one, a listen address means TCP.
#[test]
fn transport_inference_follows_the_listen_address() {
    let topology = FleetTopology::parse(
        "[fleet]\nrecords = 16\n\n[replica a]\nlisten = 127.0.0.1:4000\n\n[replica b]\n\
         transport = local\n",
    )
    .unwrap();
    assert_eq!(topology.replicas[0].transport, TransportKind::Tcp);
    assert_eq!(topology.replicas[1].transport, TransportKind::Local);
}
