//! IM-PIR — in-memory (processing-in-memory accelerated) multi-server
//! private information retrieval.
//!
//! This facade crate re-exports the whole workspace behind one dependency,
//! mirroring how a downstream user would consume the reproduction of
//! *"IM-PIR: In-Memory Private Information Retrieval"* (MIDDLEWARE 2025):
//!
//! * [`core`] — the PIR protocol, client, CPU and PIM server backends,
//!   batching and the end-to-end two-server scheme;
//! * [`dpf`] — distributed point functions (GGM tree, AES-128 PRF) and
//!   their parallel evaluation strategies;
//! * [`crypto`] — portable AES-128, PRG and PRF primitives;
//! * [`pim`] — the functional + timed UPMEM PIM simulator;
//! * [`baselines`] — the CPU-PIR and GPU-PIR comparators;
//! * [`perf`] — device profiles, roofline and paper-scale analytic models;
//! * [`workload`] — synthetic databases, query distributions and
//!   application scenarios.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use im_pir::core::{database::Database, scheme::TwoServerPir, server::pim::ImPirConfig};
//!
//! let db = Arc::new(Database::random(1024, 32, 1)?);
//! let mut pir = TwoServerPir::with_pim_servers(db.clone(), ImPirConfig::tiny_test(4))?;
//! assert_eq!(pir.query(700)?, db.record(700));
//! # Ok::<(), im_pir::core::PirError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the harness that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use impir_baselines as baselines;
pub use impir_core as core;
pub use impir_crypto as crypto;
pub use impir_dpf as dpf;
pub use impir_perf as perf;
pub use impir_pim as pim;
pub use impir_workload as workload;
