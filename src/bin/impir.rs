//! `impir` — a small command-line front end for the IM-PIR reproduction.
//!
//! Subcommands:
//!
//! * `impir query --records N --record-bytes B --index I [--dpus D] [--clusters C] [--backend pim|cpu]`
//!   — build a deterministic synthetic database, run one private query end
//!   to end and print the retrieved record plus the server-side phase
//!   breakdown;
//! * `impir batch --records N --batch Q [--clusters C]` — run a batch of
//!   uniformly random queries on IM-PIR and report throughput;
//! * `impir model --db-gb G --batch Q [--clusters C]` — print the
//!   paper-scale modelled latency/throughput of CPU-PIR, GPU-PIR and
//!   IM-PIR for the given workload.
//!
//! The CLI exists so the system can be poked without writing Rust; all the
//! heavy lifting lives in the library crates.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use im_pir::core::database::Database;
use im_pir::core::scheme::TwoServerPir;
use im_pir::core::server::cpu::CpuServerConfig;
use im_pir::core::server::pim::ImPirConfig;
use im_pir::core::PhaseBreakdown;
use im_pir::perf::model::PirWorkload;
use im_pir::perf::DeviceProfile;
use im_pir::pim::PimConfig;
use im_pir::workload::QueryDistribution;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let options = match parse_options(rest) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "query" => run_query(&options),
        "batch" => run_batch(&options),
        "model" => run_model(&options),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  impir query --records N [--record-bytes B] [--index I] [--dpus D] [--clusters C] [--backend pim|cpu]
  impir batch --records N [--record-bytes B] [--batch Q] [--dpus D] [--clusters C]
  impir model [--db-gb G] [--batch Q] [--clusters C]";

fn parse_options(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut options = HashMap::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected a --flag, found `{flag}`"));
        };
        let value = iter
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        options.insert(name.to_string(), value.clone());
    }
    Ok(options)
}

fn get_u64(options: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match options.get(key) {
        None => Ok(default),
        Some(value) => value
            .parse()
            .map_err(|_| format!("--{key} expects an integer, got `{value}`")),
    }
}

fn get_f64(options: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match options.get(key) {
        None => Ok(default),
        Some(value) => value
            .parse()
            .map_err(|_| format!("--{key} expects a number, got `{value}`")),
    }
}

fn pim_config(options: &HashMap<String, String>) -> Result<ImPirConfig, String> {
    let dpus = get_u64(options, "dpus", 8)? as usize;
    let clusters = get_u64(options, "clusters", 1)? as usize;
    Ok(ImPirConfig {
        pim: PimConfig::tiny_test(dpus.max(1), 32 << 20),
        clusters: clusters.max(1),
        eval_threads: 1,
    })
}

fn print_phases(phases: &PhaseBreakdown) {
    let names = PhaseBreakdown::phase_names();
    for (name, share) in names.iter().zip(phases.percentages()) {
        if share > 0.0 {
            println!("  {name:>14}: {share:5.1} %");
        }
    }
}

fn run_query(options: &HashMap<String, String>) -> Result<(), String> {
    let records = get_u64(options, "records", 4096)?;
    let record_bytes = get_u64(options, "record-bytes", 32)? as usize;
    let index = get_u64(options, "index", records / 2)?;
    let backend = options.get("backend").map(String::as_str).unwrap_or("pim");

    let database =
        Arc::new(Database::random(records, record_bytes, 42).map_err(|e| e.to_string())?);
    println!(
        "database: {} records x {} bytes ({} KiB), querying index {}",
        records,
        record_bytes,
        database.size_bytes() / 1024,
        index
    );

    let (record, phases) = match backend {
        "pim" => {
            let mut pir = TwoServerPir::with_pim_servers(database.clone(), pim_config(options)?)
                .map_err(|e| e.to_string())?;
            let record = pir.query(index).map_err(|e| e.to_string())?;
            let phases = pir.last_phases().map(|(first, _)| *first);
            (record, phases)
        }
        "cpu" => {
            let mut pir =
                TwoServerPir::with_cpu_servers(database.clone(), CpuServerConfig::baseline())
                    .map_err(|e| e.to_string())?;
            let record = pir.query(index).map_err(|e| e.to_string())?;
            let phases = pir.last_phases().map(|(first, _)| *first);
            (record, phases)
        }
        other => return Err(format!("unknown backend `{other}` (expected pim or cpu)")),
    };

    assert_eq!(
        record,
        database.record(index),
        "PIR answer must match the database"
    );
    let preview: String = record.iter().take(16).map(|b| format!("{b:02x}")).collect();
    println!("retrieved record ({} bytes): {preview}…", record.len());
    if let Some(phases) = phases {
        println!("server 1 phase shares (hybrid time):");
        print_phases(&phases);
    }
    Ok(())
}

fn run_batch(options: &HashMap<String, String>) -> Result<(), String> {
    let records = get_u64(options, "records", 16384)?;
    let record_bytes = get_u64(options, "record-bytes", 32)? as usize;
    let batch = get_u64(options, "batch", 16)? as usize;

    let database = Arc::new(Database::random(records, record_bytes, 7).map_err(|e| e.to_string())?);
    let mut pir = TwoServerPir::with_pim_servers(database.clone(), pim_config(options)?)
        .map_err(|e| e.to_string())?;
    let indices = QueryDistribution::Uniform.sample(batch, records, 1);
    let (answers, outcome_1, _outcome_2) = pir.query_batch(&indices).map_err(|e| e.to_string())?;
    for (answer, index) in answers.iter().zip(&indices) {
        assert_eq!(answer, database.record(*index));
    }
    println!(
        "answered {} queries: wall {:.3} s, hybrid {:.3} s ({:.1} QPS hybrid)",
        batch,
        outcome_1.wall_seconds,
        outcome_1.hybrid_seconds(),
        batch as f64 / outcome_1.hybrid_seconds()
    );
    println!("server 1 batch phase shares:");
    print_phases(&outcome_1.phase_totals);
    Ok(())
}

fn run_model(options: &HashMap<String, String>) -> Result<(), String> {
    let db_gb = get_f64(options, "db-gb", 1.0)?;
    let batch = get_u64(options, "batch", 32)? as usize;
    let clusters = get_u64(options, "clusters", 1)? as usize;
    if db_gb <= 0.0 {
        return Err("--db-gb must be positive".to_string());
    }
    let workload = PirWorkload::new((db_gb * (1u64 << 30) as f64) as u64, 32, batch.max(1));

    let cpu =
        im_pir::perf::model::cpu_pir_batch(&DeviceProfile::cpu_baseline_xeon_e5_2683(), &workload);
    let gpu = im_pir::perf::model::gpu_pir_batch(&DeviceProfile::gpu_rtx_4090(), &workload);
    let pim = im_pir::perf::model::impir_batch(
        &DeviceProfile::pim_host_xeon_silver_4110(),
        &workload,
        clusters.max(1),
    );
    println!(
        "modelled at paper scale: {:.2} GB database, batch = {}, {} cluster(s)",
        db_gb, batch, clusters
    );
    println!(
        "  CPU-PIR: {:8.2} QPS   ({:.3} s per batch)",
        cpu.throughput_qps(),
        cpu.latency_seconds
    );
    println!(
        "  GPU-PIR: {:8.2} QPS   ({:.3} s per batch)",
        gpu.throughput_qps(),
        gpu.latency_seconds
    );
    println!(
        "  IM-PIR : {:8.2} QPS   ({:.3} s per batch)",
        pim.throughput_qps(),
        pim.latency_seconds
    );
    println!(
        "  IM-PIR speedup: {:.2}x over CPU-PIR, {:.2}x over GPU-PIR",
        cpu.latency_seconds / pim.latency_seconds,
        gpu.latency_seconds / pim.latency_seconds
    );
    Ok(())
}
